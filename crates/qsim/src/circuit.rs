//! A small quantum-circuit IR.
//!
//! The paper models both communicating parties inside a single circuit (Fig. 2's experiments
//! are one circuit per message value: prepare `|Φ+⟩`, encode, push Alice's qubit through η
//! identity gates, Bell-measure). [`Circuit`] is the corresponding IR: an ordered list of
//! [`Operation`]s over a fixed register, built with [`CircuitBuilder`], executable on the
//! statevector back-end directly or on the density-matrix back-end through the noisy executor
//! in the `noise` crate.

use crate::counts::Counts;
use crate::error::QsimError;
use crate::gates;
use crate::statevector::StateVector;
use mathkit::matrix::CMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One element of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// A unitary gate on one or more qubits.
    Gate {
        /// Human-readable gate name (`"h"`, `"cx"`, `"id"`, …).
        name: String,
        /// The unitary matrix (dimension `2^k` for `k` target qubits).
        matrix: CMatrix,
        /// Target qubits, most significant first.
        qubits: Vec<usize>,
    },
    /// A computational-basis measurement of one qubit into one classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Classical bit receiving the outcome.
        clbit: usize,
    },
    /// A barrier — semantically a no-op, used to delimit protocol phases in rendered circuits.
    Barrier,
    /// Resets a qubit to `|0⟩` (measure and conditionally flip).
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
}

impl Operation {
    /// The qubits this operation touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Gate { qubits, .. } => qubits.clone(),
            Operation::Measure { qubit, .. } | Operation::Reset { qubit } => vec![*qubit],
            Operation::Barrier => Vec::new(),
        }
    }

    /// Returns `true` for unitary gate operations.
    pub fn is_gate(&self) -> bool {
        matches!(self, Operation::Gate { .. })
    }
}

/// An ordered list of operations over a fixed-width quantum and classical register.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    operations: Vec<Operation>,
}

impl Circuit {
    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits in the register.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The operations in program order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of unitary gate operations (barriers, measurements and resets excluded).
    pub fn gate_count(&self) -> usize {
        self.operations.iter().filter(|op| op.is_gate()).count()
    }

    /// Circuit depth: the length of the longest chain of operations acting on any single
    /// qubit (barriers excluded).
    pub fn depth(&self) -> usize {
        let mut per_qubit = vec![0usize; self.num_qubits];
        for op in &self.operations {
            let qs = op.qubits();
            if qs.is_empty() {
                continue;
            }
            let level = qs.iter().map(|&q| per_qubit[q]).max().unwrap_or(0) + 1;
            for q in qs {
                per_qubit[q] = level;
            }
        }
        per_qubit.into_iter().max().unwrap_or(0)
    }

    /// Executes the circuit once on the statevector back-end.
    ///
    /// Returns the final state and the classical register (bit `i` of the vector is classical
    /// bit `i`; unmeasured bits stay 0).
    ///
    /// # Errors
    ///
    /// Returns an error if any operation references a qubit outside the register or a gate
    /// matrix has the wrong dimension.
    pub fn run_statevector<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(StateVector, Vec<u8>), QsimError> {
        let mut state = StateVector::new(self.num_qubits);
        let mut clbits = vec![0u8; self.num_clbits];
        for op in &self.operations {
            match op {
                Operation::Gate { matrix, qubits, .. } => {
                    state.try_apply_unitary(matrix, qubits)?;
                }
                Operation::Measure { qubit, clbit } => {
                    if *qubit >= self.num_qubits {
                        return Err(QsimError::QubitOutOfRange {
                            qubit: *qubit,
                            num_qubits: self.num_qubits,
                        });
                    }
                    let bit = state.measure(*qubit, rng);
                    if *clbit < clbits.len() {
                        clbits[*clbit] = bit;
                    }
                }
                Operation::Barrier => {}
                Operation::Reset { qubit } => {
                    let bit = state.measure(*qubit, rng);
                    if bit == 1 {
                        state.apply_single(&gates::pauli_x(), *qubit);
                    }
                }
            }
        }
        Ok((state, clbits))
    }

    /// Executes the circuit `shots` times and histograms the classical register.
    ///
    /// The classical register is rendered most-significant-bit-first (clbit 0 leftmost), the
    /// same convention as the statevector bitstrings.
    ///
    /// # Errors
    ///
    /// Propagates the first execution error encountered.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Result<Counts, QsimError> {
        let mut counts = Counts::new();
        for _ in 0..shots {
            let (_, clbits) = self.run_statevector(rng)?;
            let label: String = clbits
                .iter()
                .map(|b| if *b == 1 { '1' } else { '0' })
                .collect();
            counts.record(label);
        }
        Ok(counts)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} qubits, {} clbits, {} ops (depth {})",
            self.num_qubits,
            self.num_clbits,
            self.operations.len(),
            self.depth()
        )?;
        for op in &self.operations {
            match op {
                Operation::Gate { name, qubits, .. } => writeln!(f, "  {name} {qubits:?}")?,
                Operation::Measure { qubit, clbit } => {
                    writeln!(f, "  measure q{qubit} -> c{clbit}")?
                }
                Operation::Barrier => writeln!(f, "  barrier")?,
                Operation::Reset { qubit } => writeln!(f, "  reset q{qubit}")?,
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Circuit`].
///
/// # Examples
///
/// ```rust
/// use qsim::circuit::CircuitBuilder;
/// use rand::SeedableRng;
///
/// let circuit = CircuitBuilder::new(2, 2)
///     .h(0)
///     .cnot(0, 1)
///     .measure(0, 0)
///     .measure(1, 1)
///     .build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let counts = circuit.sample(128, &mut rng).unwrap();
/// assert_eq!(counts.get("01") + counts.get("10"), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    num_qubits: usize,
    num_clbits: usize,
    operations: Vec<Operation>,
}

impl CircuitBuilder {
    /// Starts a builder for a circuit over `num_qubits` qubits and `num_clbits` classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        assert!(num_qubits > 0, "circuit must have at least one qubit");
        Self {
            num_qubits,
            num_clbits,
            operations: Vec::new(),
        }
    }

    /// Appends an arbitrary unitary gate.
    pub fn unitary<S: Into<String>>(mut self, name: S, matrix: CMatrix, qubits: &[usize]) -> Self {
        self.operations.push(Operation::Gate {
            name: name.into(),
            matrix,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Appends an identity gate (the channel element of the paper's emulation).
    pub fn id(self, qubit: usize) -> Self {
        self.unitary("id", gates::identity(), &[qubit])
    }

    /// Appends `count` identity gates on `qubit` — the paper's model of a quantum channel of
    /// length `count` (each identity is 60 ns on `ibm_brisbane`).
    pub fn identity_chain(mut self, qubit: usize, count: usize) -> Self {
        for _ in 0..count {
            self = self.id(qubit);
        }
        self
    }

    /// Appends a Hadamard gate.
    pub fn h(self, qubit: usize) -> Self {
        self.unitary("h", gates::hadamard(), &[qubit])
    }

    /// Appends a Pauli-X gate.
    pub fn x(self, qubit: usize) -> Self {
        self.unitary("x", gates::pauli_x(), &[qubit])
    }

    /// Appends a Pauli-Y gate.
    pub fn y(self, qubit: usize) -> Self {
        self.unitary("y", gates::pauli_y(), &[qubit])
    }

    /// Appends a Pauli-Z gate.
    pub fn z(self, qubit: usize) -> Self {
        self.unitary("z", gates::pauli_z(), &[qubit])
    }

    /// Appends the `iσy` encoding gate.
    pub fn iy(self, qubit: usize) -> Self {
        self.unitary("iy", gates::i_pauli_y(), &[qubit])
    }

    /// Appends an S gate.
    pub fn s(self, qubit: usize) -> Self {
        self.unitary("s", gates::s_gate(), &[qubit])
    }

    /// Appends a T gate.
    pub fn t(self, qubit: usize) -> Self {
        self.unitary("t", gates::t_gate(), &[qubit])
    }

    /// Appends a CNOT gate.
    pub fn cnot(self, control: usize, target: usize) -> Self {
        self.unitary("cx", gates::cnot(), &[control, target])
    }

    /// Appends a CZ gate.
    pub fn cz(self, a: usize, b: usize) -> Self {
        self.unitary("cz", gates::cz(), &[a, b])
    }

    /// Appends a SWAP gate.
    pub fn swap(self, a: usize, b: usize) -> Self {
        self.unitary("swap", gates::swap(), &[a, b])
    }

    /// Appends the basis-change unitary `V(θ)` used before measuring in basis `B(θ)`.
    pub fn basis_change(self, qubit: usize, theta: f64) -> Self {
        self.unitary("basis_change", gates::basis_change(theta), &[qubit])
    }

    /// Appends a measurement of `qubit` into `clbit`.
    pub fn measure(mut self, qubit: usize, clbit: usize) -> Self {
        self.operations.push(Operation::Measure { qubit, clbit });
        self
    }

    /// Appends a barrier.
    pub fn barrier(mut self) -> Self {
        self.operations.push(Operation::Barrier);
        self
    }

    /// Appends a reset of `qubit` to `|0⟩`.
    pub fn reset(mut self, qubit: usize) -> Self {
        self.operations.push(Operation::Reset { qubit });
        self
    }

    /// Finalises the circuit.
    pub fn build(self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            operations: self.operations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn builder_produces_expected_metadata() {
        let c = CircuitBuilder::new(3, 2)
            .h(0)
            .cnot(0, 1)
            .barrier()
            .x(2)
            .measure(0, 0)
            .measure(1, 1)
            .build();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_clbits(), 2);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.operations().len(), 6);
        // Depth: q0 has h, cnot, measure = 3; q1 has cnot, measure = 3 (cnot at level 2).
        assert_eq!(c.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubit_circuit_panics() {
        let _ = CircuitBuilder::new(0, 0);
    }

    #[test]
    fn bell_circuit_sampling_is_correlated() {
        let c = CircuitBuilder::new(2, 2)
            .h(0)
            .cnot(0, 1)
            .measure(0, 0)
            .measure(1, 1)
            .build();
        let counts = c.sample(512, &mut rng()).unwrap();
        assert_eq!(counts.total(), 512);
        assert_eq!(counts.get("01"), 0);
        assert_eq!(counts.get("10"), 0);
        assert!(counts.get("00") > 180 && counts.get("11") > 180);
    }

    #[test]
    fn identity_chain_does_not_change_ideal_results() {
        let c = CircuitBuilder::new(2, 2)
            .h(0)
            .cnot(0, 1)
            .identity_chain(0, 100)
            .measure(0, 0)
            .measure(1, 1)
            .build();
        assert_eq!(c.gate_count(), 102);
        let counts = c.sample(64, &mut rng()).unwrap();
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn reset_forces_zero() {
        let c = CircuitBuilder::new(1, 1)
            .x(0)
            .reset(0)
            .measure(0, 0)
            .build();
        let counts = c.sample(32, &mut rng()).unwrap();
        assert_eq!(counts.get("0"), 32);
    }

    #[test]
    fn run_statevector_reports_out_of_range_errors() {
        let c = CircuitBuilder::new(1, 1).measure(3, 0).build();
        assert!(matches!(
            c.run_statevector(&mut rng()),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        let c = CircuitBuilder::new(1, 0)
            .unitary("bad", gates::cnot(), &[0])
            .build();
        assert!(matches!(
            c.run_statevector(&mut rng()),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn measurement_into_out_of_range_clbit_is_ignored() {
        let c = CircuitBuilder::new(1, 1).x(0).measure(0, 5).build();
        let (_, clbits) = c.run_statevector(&mut rng()).unwrap();
        assert_eq!(clbits, vec![0]);
    }

    #[test]
    fn basis_change_then_measure_matches_direct_basis_measurement() {
        // Measuring |0⟩ in B(π/2) through the circuit should be 50/50.
        let c = CircuitBuilder::new(1, 1)
            .basis_change(0, std::f64::consts::FRAC_PI_2)
            .measure(0, 0)
            .build();
        let counts = c.sample(2000, &mut rng()).unwrap();
        let frac = counts.frequency("0");
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn operation_introspection() {
        let g = Operation::Gate {
            name: "cx".into(),
            matrix: gates::cnot(),
            qubits: vec![0, 1],
        };
        assert!(g.is_gate());
        assert_eq!(g.qubits(), vec![0, 1]);
        assert!(Operation::Barrier.qubits().is_empty());
        assert!(!Operation::Barrier.is_gate());
        assert_eq!(Operation::Reset { qubit: 2 }.qubits(), vec![2]);
    }

    #[test]
    fn display_renders_every_operation_kind() {
        let c = CircuitBuilder::new(2, 1)
            .h(0)
            .barrier()
            .reset(1)
            .measure(0, 0)
            .build();
        let text = c.to_string();
        assert!(text.contains("h"));
        assert!(text.contains("barrier"));
        assert!(text.contains("reset"));
        assert!(text.contains("measure"));
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        let c = CircuitBuilder::new(2, 0).build();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.gate_count(), 0);
    }
}
