//! Measurement bases and outcomes.
//!
//! The DI security check of the protocol has Alice measure in one of three bases
//! `B_{A_j} = {|0⟩ ± e^{iA_j}|1⟩}` with `A_0 = π/4`, `A_1 = 0`, `A_2 = π/2`, and Bob in one of
//! two bases with `B_1 = π/4`, `B_2 = −π/4`. This module names those bases and the ±1-valued
//! outcomes they produce.

use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
use std::fmt;

/// A single-qubit measurement basis of the form `{(|0⟩ + e^{iθ}|1⟩)/√2, (|0⟩ − e^{iθ}|1⟩)/√2}`.
///
/// # Examples
///
/// ```rust
/// use qsim::measurement::MeasurementBasis;
///
/// let a0 = MeasurementBasis::alice(0);
/// assert!((a0.angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeasurementBasis {
    /// Phase angle θ of the basis.
    angle: f64,
    /// Human-readable label ("A0", "B1", …).
    label: &'static str,
}

impl Deserialize for MeasurementBasis {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let angle = f64::from_value(value.get_field("angle")?)?;
        let label = String::from_value(value.get_field("label")?)?;
        // The label field is `&'static str` (so the type stays `Copy`); map the
        // serialized form back onto the known label set.
        let label = ["A0", "A1", "A2", "B1", "B2"]
            .into_iter()
            .find(|&known| known == label)
            .unwrap_or("custom");
        Ok(Self { angle, label })
    }
}

impl MeasurementBasis {
    /// Creates a basis from an arbitrary angle with a custom label.
    pub fn from_angle(angle: f64, label: &'static str) -> Self {
        Self { angle, label }
    }

    /// Alice's measurement basis `A_j` of the DI check: `A_0 = π/4`, `A_1 = 0`, `A_2 = π/2`.
    ///
    /// # Panics
    ///
    /// Panics if `j > 2`.
    pub fn alice(j: usize) -> Self {
        match j {
            0 => Self {
                angle: FRAC_PI_4,
                label: "A0",
            },
            1 => Self {
                angle: 0.0,
                label: "A1",
            },
            2 => Self {
                angle: FRAC_PI_2,
                label: "A2",
            },
            _ => panic!("Alice only has bases A0, A1, A2 (got index {j})"),
        }
    }

    /// Bob's measurement basis `B_k` of the DI check.
    ///
    /// The paper lists `B_1 = π/4`, `B_2 = −π/4` with basis vectors `|0⟩ ± e^{iB_k}|1⟩`.
    /// Taken literally, those phases give a CHSH value of **zero** on `|Φ+⟩` (because
    /// `⟨Y⊗Y⟩ = −1`, equatorial correlators are `cos(θ_A + θ_B)`). We therefore conjugate
    /// Bob's phase — `B_1 = −π/4`, `B_2 = +π/4` — which is the standard DI-QKD convention
    /// (Acín et al. 2007) and restores the intended `S = 2√2` for the honest protocol. The
    /// labels keep the paper's names.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not 1 or 2.
    pub fn bob(k: usize) -> Self {
        match k {
            1 => Self {
                angle: -FRAC_PI_4,
                label: "B1",
            },
            2 => Self {
                angle: FRAC_PI_4,
                label: "B2",
            },
            _ => panic!("Bob only has bases B1 and B2 (got index {k})"),
        }
    }

    /// All three of Alice's DI-check bases.
    pub fn alice_all() -> [Self; 3] {
        [Self::alice(0), Self::alice(1), Self::alice(2)]
    }

    /// Both of Bob's DI-check bases.
    pub fn bob_all() -> [Self; 2] {
        [Self::bob(1), Self::bob(2)]
    }

    /// Phase angle θ of the basis.
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Label of the basis ("A0", "B2", …).
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl fmt::Display for MeasurementBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(θ={:.4})", self.label, self.angle)
    }
}

/// A ±1-valued measurement outcome, as used in CHSH correlators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasurementOutcome {
    /// Eigenvalue +1 (bit 0).
    Plus,
    /// Eigenvalue −1 (bit 1).
    Minus,
}

impl MeasurementOutcome {
    /// Maps a measured bit to an outcome: `0 → +1`, `1 → −1`.
    pub fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            MeasurementOutcome::Plus
        } else {
            MeasurementOutcome::Minus
        }
    }

    /// The underlying bit: `+1 → 0`, `−1 → 1`.
    pub fn to_bit(self) -> u8 {
        match self {
            MeasurementOutcome::Plus => 0,
            MeasurementOutcome::Minus => 1,
        }
    }

    /// The eigenvalue as a float (`+1.0` or `−1.0`).
    pub fn value(self) -> f64 {
        match self {
            MeasurementOutcome::Plus => 1.0,
            MeasurementOutcome::Minus => -1.0,
        }
    }

    /// Returns `true` for the `+1` outcome.
    pub fn is_plus(self) -> bool {
        matches!(self, MeasurementOutcome::Plus)
    }
}

impl fmt::Display for MeasurementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasurementOutcome::Plus => write!(f, "+1"),
            MeasurementOutcome::Minus => write!(f, "-1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alice_bases_match_the_paper() {
        assert!((MeasurementBasis::alice(0).angle() - FRAC_PI_4).abs() < 1e-15);
        assert!((MeasurementBasis::alice(1).angle() - 0.0).abs() < 1e-15);
        assert!((MeasurementBasis::alice(2).angle() - FRAC_PI_2).abs() < 1e-15);
        assert_eq!(MeasurementBasis::alice(0).label(), "A0");
        assert_eq!(MeasurementBasis::alice_all().len(), 3);
    }

    #[test]
    fn bob_bases_are_the_phase_conjugated_paper_angles() {
        assert!((MeasurementBasis::bob(1).angle() + FRAC_PI_4).abs() < 1e-15);
        assert!((MeasurementBasis::bob(2).angle() - FRAC_PI_4).abs() < 1e-15);
        assert_eq!(MeasurementBasis::bob(1).label(), "B1");
        assert_eq!(MeasurementBasis::bob_all().len(), 2);
    }

    #[test]
    #[should_panic(expected = "A0, A1, A2")]
    fn alice_basis_index_out_of_range_panics() {
        let _ = MeasurementBasis::alice(3);
    }

    #[test]
    #[should_panic(expected = "B1 and B2")]
    fn bob_basis_index_out_of_range_panics() {
        let _ = MeasurementBasis::bob(0);
    }

    #[test]
    fn outcome_bit_round_trip() {
        assert_eq!(MeasurementOutcome::from_bit(0), MeasurementOutcome::Plus);
        assert_eq!(MeasurementOutcome::from_bit(1), MeasurementOutcome::Minus);
        assert_eq!(MeasurementOutcome::Plus.to_bit(), 0);
        assert_eq!(MeasurementOutcome::Minus.to_bit(), 1);
        assert_eq!(MeasurementOutcome::Plus.value(), 1.0);
        assert_eq!(MeasurementOutcome::Minus.value(), -1.0);
        assert!(MeasurementOutcome::Plus.is_plus());
        assert!(!MeasurementOutcome::Minus.is_plus());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MeasurementOutcome::Plus.to_string(), "+1");
        assert_eq!(MeasurementOutcome::Minus.to_string(), "-1");
        assert!(MeasurementBasis::alice(0).to_string().contains("A0"));
        assert!(MeasurementBasis::from_angle(0.5, "custom")
            .to_string()
            .contains("custom"));
    }
}
