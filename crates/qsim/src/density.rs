//! Mixed-state (density-matrix) simulation.
//!
//! Noise makes pure-state simulation insufficient: the `ibm_brisbane`-style channel model is a
//! completely-positive trace-preserving (CPTP) map expressed with Kraus operators, so the
//! noisy executor in the `noise` crate runs on [`DensityMatrix`]. The representation is a
//! dense `2^n × 2^n` matrix; the protocol only ever needs a handful of qubits at a time
//! (EPR pairs plus the occasional eavesdropper ancilla), so this stays cheap.

use crate::error::QsimError;
use crate::gates;
use crate::measurement::MeasurementOutcome;
use crate::statevector::StateVector;
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread cache of DI-check basis rotations keyed by `θ.to_bits()`:
    /// `(θ, V(θ), V(θ)†)`. The protocol measures in a handful of fixed CHSH
    /// angles thousands of times per trial batch, so
    /// [`DensityMatrix::measure_in_basis`] builds each rotation once per
    /// thread instead of once per measurement.
    static BASIS_CACHE: RefCell<Vec<(u64, CMatrix, CMatrix)>> = const { RefCell::new(Vec::new()) };
}

/// Entries a `BASIS_CACHE` holds before falling back to per-call
/// construction (the protocol only ever uses four angles).
const BASIS_CACHE_CAP: usize = 32;

/// A mixed quantum state of `n` qubits represented by its density matrix.
///
/// Qubit ordering matches [`StateVector`]: qubit `0` is the most significant bit of a basis
/// index.
///
/// # Examples
///
/// ```rust
/// use qsim::density::DensityMatrix;
/// use qsim::statevector::StateVector;
/// use qsim::gates;
///
/// let mut psi = StateVector::new(2);
/// psi.apply_single(&gates::hadamard(), 0);
/// psi.apply_two(&gates::cnot(), 0, 1);
/// let rho = DensityMatrix::from_statevector(&psi);
/// assert!((rho.purity() - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: CMatrix,
}

impl Clone for DensityMatrix {
    fn clone(&self) -> Self {
        Self {
            num_qubits: self.num_qubits,
            rho: self.rho.clone(),
        }
    }

    /// Copies `source` into `self`, reusing `self`'s matrix buffer — the
    /// allocation-free reset the per-trial pair pool relies on.
    fn clone_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.rho.clone_from(&source.rho);
    }
}

/// Embeds a `2^k`-dimensional operator acting on `qubits` into the full `2^n`-dimensional
/// space, with identity on all other qubits. The first entry of `qubits` is the most
/// significant bit of the operator's basis ordering.
pub(crate) fn embed_operator(op: &CMatrix, qubits: &[usize], num_qubits: usize) -> CMatrix {
    let k = qubits.len();
    let dim = 1usize << num_qubits;
    let shifts: Vec<usize> = qubits.iter().map(|&q| num_qubits - 1 - q).collect();
    let target_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
    let mut full = CMatrix::zeros(dim, dim);
    for row in 0..dim {
        // Sub-index of the target qubits within this row.
        let mut row_sub = 0usize;
        for (bit_pos, &shift) in shifts.iter().enumerate() {
            if row & (1 << shift) != 0 {
                row_sub |= 1 << (k - 1 - bit_pos);
            }
        }
        let row_rest = row & !target_mask;
        for col_sub in 0..(1usize << k) {
            let val = op[(row_sub, col_sub)];
            if val == Complex64::ZERO {
                continue;
            }
            let mut col = row_rest;
            for (bit_pos, &shift) in shifts.iter().enumerate() {
                if col_sub & (1 << (k - 1 - bit_pos)) != 0 {
                    col |= 1 << shift;
                }
            }
            full[(row, col)] = val;
        }
    }
    full
}

impl DensityMatrix {
    /// Creates the pure state `|0…0⟩⟨0…0|` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or greater than 12 (a 12-qubit density matrix already
    /// has 16.7 M entries).
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "register must have at least one qubit");
        assert!(
            num_qubits <= 12,
            "density-matrix simulation limited to 12 qubits"
        );
        let dim = 1 << num_qubits;
        let mut rho = CMatrix::zeros(dim, dim);
        rho[(0, 0)] = Complex64::ONE;
        Self { num_qubits, rho }
    }

    /// Builds the density matrix of a pure state.
    pub fn from_statevector(state: &StateVector) -> Self {
        Self {
            num_qubits: state.num_qubits(),
            rho: state.to_density_matrix(),
        }
    }

    /// Builds a density matrix directly from a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the matrix is not square with a
    /// power-of-two dimension, and [`QsimError::NotNormalized`] if it is not a valid density
    /// matrix (Hermitian, unit trace, positive).
    pub fn from_matrix(rho: CMatrix) -> Result<Self, QsimError> {
        let dim = rho.rows();
        if !rho.is_square() || dim == 0 || !dim.is_power_of_two() {
            return Err(QsimError::DimensionMismatch {
                expected: dim.next_power_of_two().max(2),
                actual: dim,
            });
        }
        if !rho.is_density_matrix(1e-7) {
            return Err(QsimError::NotNormalized);
        }
        Ok(Self {
            num_qubits: dim.trailing_zeros() as usize,
            rho,
        })
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(num_qubits: usize) -> Self {
        assert!(num_qubits > 0 && num_qubits <= 12);
        let dim = 1 << num_qubits;
        Self {
            num_qubits,
            rho: CMatrix::identity(dim).scale(Complex64::real(1.0 / dim as f64)),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.num_qubits
    }

    /// Immutable view of the underlying matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Mutable view of the underlying matrix, for the in-place compiled
    /// kernels (`crate::kernel`). Crate-private: external callers go through
    /// the validated operations so `ρ` stays a valid density matrix.
    pub(crate) fn matrix_mut(&mut self) -> &mut CMatrix {
        &mut self.rho
    }

    /// Trace of the density matrix (should always be ≈ 1).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        self.rho.matmul(&self.rho).trace().re
    }

    /// Applies a unitary to the given qubits: `ρ → U ρ U†`.
    ///
    /// Runs in place over the targeted qubits' index strides — the embedded
    /// `2^n × 2^n` operator is never materialised, and nothing is allocated
    /// beyond a reusable thread-local block buffer. Equivalent to
    /// conjugating with `embed_operator`'s embedding (the two-qubit gate
    /// fast path dominates the protocol's workloads).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`StateVector::try_apply_unitary`].
    pub fn try_apply_unitary(&mut self, gate: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        self.validate_targets(gate, qubits)?;
        if qubits.len() > 4 {
            // Wide gates are outside every hot path; keep the simple
            // embedded form rather than growing the stride tables.
            let full = embed_operator(gate, qubits, self.num_qubits);
            self.rho = full.matmul(&self.rho).matmul(&full.adjoint());
            return Ok(());
        }
        if qubits.len() == 1 {
            self.apply_unitary_1q(gate, qubits[0]);
        } else if gate.rows() == self.dim() && qubits.iter().enumerate().all(|(i, &q)| q == i) {
            // The gate covers the whole register in natural qubit order —
            // the 2-qubit gates on the protocol's EPR pairs land here.
            self.apply_unitary_dense(gate);
        } else {
            self.apply_unitary_strided(gate, qubits);
        }
        Ok(())
    }

    /// Single-qubit fast path: conjugates the two strided row/column slices
    /// in place with the four gate entries held in registers.
    fn apply_unitary_1q(&mut self, gate: &CMatrix, qubit: usize) {
        let dim = self.dim();
        let stride = 1usize << (self.num_qubits - 1 - qubit);
        let (u00, u01, u10, u11) = (gate[(0, 0)], gate[(0, 1)], gate[(1, 0)], gate[(1, 1)]);
        let rho = self.rho.as_mut_slice();
        // Left pass ρ ← U·ρ over paired rows (target bit clear / set).
        for base in 0..dim {
            if base & stride != 0 {
                continue;
            }
            let (head, tail) = rho[base * dim..].split_at_mut(stride * dim);
            let top = &mut head[..dim];
            let bottom = &mut tail[..dim];
            for (t, b) in top.iter_mut().zip(bottom.iter_mut()) {
                let (x, y) = (*t, *b);
                *t = u00 * x + u01 * y;
                *b = u10 * x + u11 * y;
            }
        }
        // Right pass ρ ← ρ·U† over paired columns:
        // (ρU†)[i][c] = Σ_r ρ[i][r]·conj(U[c][r]).
        let (c00, c01, c10, c11) = (u00.conj(), u01.conj(), u10.conj(), u11.conj());
        for row in rho.chunks_exact_mut(dim) {
            for base in 0..dim {
                if base & stride != 0 {
                    continue;
                }
                let (x, y) = (row[base], row[base | stride]);
                row[base] = x * c00 + y * c01;
                row[base | stride] = x * c10 + y * c11;
            }
        }
    }

    /// Full-register fast path: two dense in-place products over the flat
    /// storage, skipping zero gate entries (CNOT-style gates are sparse).
    /// Only reachable with `gate.rows() == dim ≤ 16`, so a stack block
    /// suffices — no heap traffic.
    fn apply_unitary_dense(&mut self, gate: &CMatrix) {
        let dim = self.dim();
        let u = gate.as_slice();
        let rho = self.rho.as_mut_slice();
        let mut scratch = [Complex64::ZERO; 16];
        let block = &mut scratch[..dim];
        // Left pass ρ ← U·ρ, one column at a time.
        for j in 0..dim {
            for (i, slot) in block.iter_mut().enumerate() {
                *slot = rho[i * dim + j];
            }
            for (r, u_row) in u.chunks_exact(dim).enumerate() {
                let mut acc = Complex64::ZERO;
                for (&g, &amp) in u_row.iter().zip(block.iter()) {
                    if g != Complex64::ZERO {
                        acc += g * amp;
                    }
                }
                rho[r * dim + j] = acc;
            }
        }
        // Right pass ρ ← ρ·U†, one row at a time.
        for row in rho.chunks_exact_mut(dim) {
            block.copy_from_slice(row);
            for (slot, u_row) in row.iter_mut().zip(u.chunks_exact(dim)) {
                let mut acc = Complex64::ZERO;
                for (&g, &amp) in u_row.iter().zip(block.iter()) {
                    if g != Complex64::ZERO {
                        acc += amp * g.conj();
                    }
                }
                *slot = acc;
            }
        }
    }

    /// General strided path: iterates only the targeted qubits' index
    /// strides — the embedded `2^n × 2^n` operator is never materialised
    /// and the gather block lives on the stack.
    fn apply_unitary_strided(&mut self, gate: &CMatrix, qubits: &[usize]) {
        let dim = self.dim();
        let gate_dim = gate.rows();
        let gate_qubits = qubits.len();
        // Strides of the targeted qubits inside a basis index, most
        // significant target first (same convention as `embed_operator`).
        let mut offsets = [0usize; 16];
        let mut target_mask = 0usize;
        for (bit_pos, &q) in qubits.iter().enumerate() {
            let shift = self.num_qubits - 1 - q;
            target_mask |= 1 << shift;
            let bit = 1usize << (gate_qubits - 1 - bit_pos);
            for (sub, offset) in offsets.iter_mut().enumerate().take(gate_dim) {
                if sub & bit != 0 {
                    *offset |= 1 << shift;
                }
            }
        }
        let offsets = &offsets[..gate_dim];
        let mut scratch = [Complex64::ZERO; 16];
        let block = &mut scratch[..gate_dim];
        let rho = self.rho.as_mut_slice();
        // Left pass: ρ ← U·ρ, one strided gate application per column of
        // each targeted row block.
        for base in 0..dim {
            if base & target_mask != 0 {
                continue;
            }
            for j in 0..dim {
                for (sub, slot) in block.iter_mut().enumerate() {
                    *slot = rho[(base | offsets[sub]) * dim + j];
                }
                for (row, &offset) in offsets.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (col, &amp) in block.iter().enumerate() {
                        acc += gate[(row, col)] * amp;
                    }
                    rho[(base | offset) * dim + j] = acc;
                }
            }
        }
        // Right pass: ρ ← ρ·U†, one strided application per targeted column
        // block of each row ((ρU†)[i][c] = Σ_r ρ[i][r]·conj(U[c][r])).
        for row_start in (0..dim * dim).step_by(dim) {
            let row = &mut rho[row_start..row_start + dim];
            for base in 0..dim {
                if base & target_mask != 0 {
                    continue;
                }
                for (sub, slot) in block.iter_mut().enumerate() {
                    *slot = row[base | offsets[sub]];
                }
                for (col, &offset) in offsets.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (r, &amp) in block.iter().enumerate() {
                        acc += amp * gate[(col, r)].conj();
                    }
                    row[base | offset] = acc;
                }
            }
        }
    }

    /// Applies a unitary to the given qubits, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics if the qubits are out of range / duplicated or the gate has the wrong dimension.
    pub fn apply_unitary(&mut self, gate: &CMatrix, qubits: &[usize]) {
        self.try_apply_unitary(gate, qubits)
            .expect("apply_unitary: invalid gate application");
    }

    /// Applies a single-qubit unitary.
    pub fn apply_single(&mut self, gate: &CMatrix, qubit: usize) {
        self.apply_unitary(gate, &[qubit]);
    }

    /// Applies a two-qubit unitary.
    pub fn apply_two(&mut self, gate: &CMatrix, qubit_a: usize, qubit_b: usize) {
        self.apply_unitary(gate, &[qubit_a, qubit_b]);
    }

    /// Applies a CPTP map given by Kraus operators `{K_i}` to the given qubits:
    /// `ρ → Σ_i K_i ρ K_i†`.
    ///
    /// # Errors
    ///
    /// Returns an error if the target qubits are invalid or any Kraus operator has the wrong
    /// dimension. The completeness relation `Σ K_i† K_i = I` is *not* enforced here (noise
    /// builders in the `noise` crate validate it); this keeps the method usable for
    /// post-selected maps in tests.
    pub fn try_apply_kraus(
        &mut self,
        kraus_ops: &[CMatrix],
        qubits: &[usize],
    ) -> Result<(), QsimError> {
        if kraus_ops.is_empty() {
            return Ok(());
        }
        for op in kraus_ops {
            self.validate_targets(op, qubits)?;
        }
        let dim = self.dim();
        let mut out = CMatrix::zeros(dim, dim);
        for op in kraus_ops {
            let full = embed_operator(op, qubits, self.num_qubits);
            let term = full.matmul(&self.rho).matmul(&full.adjoint());
            out = &out + &term;
        }
        self.rho = out;
        Ok(())
    }

    /// Applies a CPTP map, panicking on invalid targets.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DensityMatrix::try_apply_kraus`].
    pub fn apply_kraus(&mut self, kraus_ops: &[CMatrix], qubits: &[usize]) {
        self.try_apply_kraus(kraus_ops, qubits)
            .expect("apply_kraus: invalid channel application");
    }

    /// Applies one **sampled trajectory step** of the CPTP map `{K_i}`:
    /// selects branch `i` with probability `p_i = Tr(K_i ρ K_i†)` and replaces
    /// the state with the renormalised branch `K_i ρ K_i† / p_i`. Averaging
    /// over many samples reproduces the exact channel action — the
    /// mixed-state generalisation of
    /// [`StateVector::apply_kraus_sampled`], with which it agrees in
    /// distribution on pure states.
    ///
    /// Exactly one `f64` is drawn from `rng` per call; branches with
    /// probability at or below [`StateVector::MIN_NORM`] are never selected.
    ///
    /// Returns the index of the selected Kraus operator.
    ///
    /// # Errors
    ///
    /// The target-validation errors of [`DensityMatrix::try_apply_kraus`],
    /// plus [`QsimError::ZeroNorm`] when every branch has vanishing
    /// probability. The state is left untouched on error.
    pub fn apply_kraus_sampled<R: Rng + ?Sized>(
        &mut self,
        kraus_ops: &[CMatrix],
        qubits: &[usize],
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        let mut branches: Vec<CMatrix> = Vec::with_capacity(kraus_ops.len());
        let mut probabilities: Vec<f64> = Vec::with_capacity(kraus_ops.len());
        for op in kraus_ops {
            self.validate_targets(op, qubits)?;
            let full = embed_operator(op, qubits, self.num_qubits);
            let branch = full.matmul(&self.rho).matmul(&full.adjoint());
            probabilities.push(branch.trace().re);
            branches.push(branch);
        }
        let index = crate::statevector::sample_branch_index(&probabilities, rng)?;
        let probability = probabilities[index];
        self.rho = branches
            .swap_remove(index)
            .scale(Complex64::real(1.0 / probability));
        Ok(index)
    }

    /// Extracts the statevector of a (numerically) pure state: `Some(|ψ⟩)`
    /// with `|ψ⟩⟨ψ| ≈ ρ` when the purity `Tr(ρ²)` is within `tol` of 1,
    /// `None` for mixed states. The returned state is normalised; its global
    /// phase is fixed by the column used for extraction and is physically
    /// irrelevant.
    pub fn as_pure_state(&self, tol: f64) -> Option<StateVector> {
        if (self.purity() - 1.0).abs() > tol {
            return None;
        }
        // For ρ = |ψ⟩⟨ψ| the column j equals ψ · ψ_j*, so the column under
        // the largest diagonal entry, renormalised, recovers ψ up to phase.
        let dim = self.dim();
        let mut best = 0;
        let mut best_weight = f64::NEG_INFINITY;
        for i in 0..dim {
            let weight = self.rho[(i, i)].re;
            if weight > best_weight {
                best_weight = weight;
                best = i;
            }
        }
        let column = mathkit::vector::CVector::new((0..dim).map(|r| self.rho[(r, best)]).collect());
        let norm = column.norm();
        if !norm.is_finite() || norm <= StateVector::MIN_NORM {
            return None;
        }
        StateVector::from_amplitudes(column.scale(Complex64::real(1.0 / norm))).ok()
    }

    fn validate_targets(&self, op: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        let k = qubits.len();
        let expected = 1usize << k;
        if op.rows() != expected || op.cols() != expected {
            return Err(QsimError::DimensionMismatch {
                expected,
                actual: op.rows(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit(q));
            }
        }
        Ok(())
    }

    /// Probability that measuring `qubit` in the computational basis yields `1`.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - qubit;
        let mask = 1usize << shift;
        (0..self.dim())
            .filter(|i| i & mask != 0)
            .map(|i| self.rho[(i, i)].re)
            .sum()
    }

    /// Diagonal of the density matrix: the Born-rule probabilities of all basis outcomes.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim())
            .map(|i| self.rho[(i, i)].re.max(0.0))
            .collect()
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> u8 {
        let p1 = self.probability_one(qubit).clamp(0.0, 1.0);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `outcome` and renormalises.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has (numerically) zero probability.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) {
        assert!(qubit < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - qubit;
        let mask = 1usize << shift;
        let keep_set = outcome == 1;
        let dim = self.dim();
        let rho = self.rho.as_mut_slice();
        let mut p = 0.0;
        for i in 0..dim {
            if ((i & mask) != 0) == keep_set {
                p += rho[i * dim + i].re;
            }
        }
        assert!(
            p > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit}, outcome {outcome})"
        );
        // Project and renormalise in place: zero every entry outside the
        // kept block, scale the kept block — no projected copy.
        let factor = Complex64::real(1.0 / p);
        for i in 0..dim {
            let keep_row = ((i & mask) != 0) == keep_set;
            let row = &mut rho[i * dim..(i + 1) * dim];
            for (j, entry) in row.iter_mut().enumerate() {
                if keep_row && ((j & mask) != 0) == keep_set {
                    *entry *= factor;
                } else {
                    *entry = Complex64::ZERO;
                }
            }
        }
    }

    /// Measures `qubit` in the basis `B(θ)`, collapsing the state, and returns the ±1 outcome.
    pub fn measure_in_basis<R: Rng + ?Sized>(
        &mut self,
        qubit: usize,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        let bit = BASIS_CACHE.with(|cell| {
            let cache = &mut *cell.borrow_mut();
            let key = theta.to_bits();
            let index = match cache.iter().position(|(k, _, _)| *k == key) {
                Some(index) => index,
                None if cache.len() < BASIS_CACHE_CAP => {
                    let rotation = gates::basis_change(theta);
                    let adjoint = rotation.adjoint();
                    cache.push((key, rotation, adjoint));
                    cache.len() - 1
                }
                None => {
                    // Cache full (a sweep over many angles): fall back to
                    // per-call construction.
                    let rotation = gates::basis_change(theta);
                    self.apply_single(&rotation, qubit);
                    let bit = self.measure(qubit, rng);
                    self.apply_single(&rotation.adjoint(), qubit);
                    return bit;
                }
            };
            let (_, rotation, adjoint) = &cache[index];
            self.apply_single(rotation, qubit);
            let bit = self.measure(qubit, rng);
            self.apply_single(adjoint, qubit);
            bit
        });
        MeasurementOutcome::from_bit(bit)
    }

    /// Measures qubit `qubit_a` in basis `B(θ_a)` and then qubit `qubit_b`
    /// in basis `B(θ_b)`, collapsing the state — the CHSH-record
    /// measurement. Equivalent to two [`DensityMatrix::measure_in_basis`]
    /// calls (two RNG draws, in the same order), but on a two-qubit
    /// register the outcomes come straight from projector traces and the
    /// post-measurement state — a pure product of the two selected basis
    /// vectors — is written directly, skipping the rotate/collapse/unrotate
    /// round-trips entirely.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range, or when an
    /// outcome with (numerically) zero probability would be selected.
    pub fn measure_two_in_bases<R: Rng + ?Sized>(
        &mut self,
        qubit_a: usize,
        theta_a: f64,
        qubit_b: usize,
        theta_b: f64,
        rng: &mut R,
    ) -> (MeasurementOutcome, MeasurementOutcome) {
        assert!(
            qubit_a < self.num_qubits && qubit_b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(qubit_a, qubit_b, "measured qubits must be distinct");
        if self.num_qubits != 2 {
            // On larger registers the remaining qubits stay entangled with
            // nothing we can shortcut; run the two measurements plainly.
            let a = self.measure_in_basis(qubit_a, theta_a, rng);
            let b = self.measure_in_basis(qubit_b, theta_b, rng);
            return (a, b);
        }
        let stride_a = 1usize << (self.num_qubits - 1 - qubit_a);
        let stride_b = 1usize << (self.num_qubits - 1 - qubit_b);
        let dim = self.dim();
        let idx = |x: usize, y: usize| x * stride_a + y * stride_b;
        // Measuring in B(θ) is projecting onto the rank-1 projector
        // P_m(θ) = |v_m⟩⟨v_m| with v_m(θ) = (|0⟩ ± e^{iθ}|1⟩)/√2
        // (+ for m = 0, − for m = 1), equivalently the 2×2 matrix
        // ½ [[1, ±e^{-iθ}], [±e^{+iθ}, 1]].
        let e_a = Complex64::cis(theta_a);
        let e_b = Complex64::cis(theta_b);
        let rho = self.rho.as_mut_slice();
        // Alice's marginal: p(a = 1) = Tr((P₁(θ_a) ⊗ I) ρ). Expanding the
        // projector and using Hermiticity of ρ this is
        // ½·Tr(ρ) − Re(e^{-iθ_a}·t_a) with t_a = Σ_b ρ[(1,b), (0,b)].
        let trace = rho[0].re + rho[5].re + rho[10].re + rho[15].re;
        let t_a = rho[idx(1, 0) * dim + idx(0, 0)] + rho[idx(1, 1) * dim + idx(0, 1)];
        let cross_a = (e_a.conj() * t_a).re;
        let p_a1 = (0.5 * trace - cross_a).clamp(0.0, 1.0);
        let bit_a = u8::from(rng.gen::<f64>() < p_a1);
        let p_a = if bit_a == 1 { p_a1 } else { 1.0 - p_a1 };
        assert!(
            p_a > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit_a}, outcome {bit_a})"
        );
        // Bob's conditional: p(b = 1 | a) = ⟨ψ|ρ|ψ⟩ / p(a), where
        // ψ = v_a(θ_a) ⊗ v_1(θ_b) since both projectors are rank-1.
        let amp = |x: usize, s: f64, e: Complex64| -> Complex64 {
            if x == 0 {
                Complex64::real(std::f64::consts::FRAC_1_SQRT_2)
            } else {
                e * (s * std::f64::consts::FRAC_1_SQRT_2)
            }
        };
        let s_a = if bit_a == 0 { 1.0 } else { -1.0 };
        let mut psi = [Complex64::ZERO; 4];
        for x in 0..2 {
            let va = amp(x, s_a, e_a);
            for y in 0..2 {
                psi[idx(x, y)] = va * amp(y, -1.0, e_b);
            }
        }
        // ⟨ψ|ρ|ψ⟩ = Σ_r |ψ_r|²ρ_rr + 2 Σ_{r<c} Re(ψ̄_r ρ_rc ψ_c); every
        // |ψ_r|² is ¼, so the diagonal part is ¼·Tr(ρ).
        let mut cross = 0.0;
        for r in 0..4 {
            for c in (r + 1)..4 {
                cross += (psi[r].conj() * rho[r * dim + c] * psi[c]).re;
            }
        }
        let joint = 0.25 * trace + 2.0 * cross;
        let p_b1 = (joint / p_a).clamp(0.0, 1.0);
        let bit_b = u8::from(rng.gen::<f64>() < p_b1);
        let p_b = if bit_b == 1 { p_b1 } else { 1.0 - p_b1 };
        assert!(
            p_b > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit_b}, outcome {bit_b})"
        );
        // Both qubits are now fully measured: the post-measurement state is
        // the pure product of the selected basis vectors. ψ already holds
        // the product for Bob's outcome 1; flip his phase sign for 0.
        if bit_b == 0 {
            for x in 0..2 {
                psi[idx(x, 1)] = -psi[idx(x, 1)];
            }
        }
        for (r, amp_r) in psi.iter().enumerate() {
            for (c, amp_c) in psi.iter().enumerate() {
                rho[r * dim + c] = *amp_r * amp_c.conj();
            }
        }
        (
            MeasurementOutcome::from_bit(bit_a),
            MeasurementOutcome::from_bit(bit_b),
        )
    }

    /// Measures qubits `qubit_a` then `qubit_b` in the computational basis,
    /// collapsing the state. Equivalent to two [`DensityMatrix::measure`]
    /// calls (two RNG draws, in the same order); on a two-qubit register
    /// the outcome probabilities come straight from the diagonal and the
    /// post-measurement basis state is written directly.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range, or when an
    /// outcome with (numerically) zero probability would be selected.
    pub fn measure_two_computational<R: Rng + ?Sized>(
        &mut self,
        qubit_a: usize,
        qubit_b: usize,
        rng: &mut R,
    ) -> (u8, u8) {
        assert!(
            qubit_a < self.num_qubits && qubit_b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(qubit_a, qubit_b, "measured qubits must be distinct");
        if self.num_qubits != 2 {
            let a = self.measure(qubit_a, rng);
            let b = self.measure(qubit_b, rng);
            return (a, b);
        }
        let stride_a = 1usize << (self.num_qubits - 1 - qubit_a);
        let stride_b = 1usize << (self.num_qubits - 1 - qubit_b);
        let dim = self.dim();
        let idx = |x: usize, y: usize| x * stride_a + y * stride_b;
        let diag = |x: usize, y: usize| self.rho.as_slice()[idx(x, y) * dim + idx(x, y)].re;
        let p_a1 = (diag(1, 0) + diag(1, 1)).clamp(0.0, 1.0);
        let bit_a = u8::from(rng.gen::<f64>() < p_a1);
        let p_a = diag(bit_a as usize, 0) + diag(bit_a as usize, 1);
        assert!(
            p_a > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit_a}, outcome {bit_a})"
        );
        let p_b1 = (diag(bit_a as usize, 1) / p_a).clamp(0.0, 1.0);
        let bit_b = u8::from(rng.gen::<f64>() < p_b1);
        let p_b = if bit_b == 1 { p_b1 } else { 1.0 - p_b1 };
        assert!(
            p_b > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit_b}, outcome {bit_b})"
        );
        let winner = idx(bit_a as usize, bit_b as usize);
        let rho = self.rho.as_mut_slice();
        rho.fill(Complex64::ZERO);
        rho[winner * dim + winner] = Complex64::ONE;
        (bit_a, bit_b)
    }

    /// Measures every qubit in the computational basis, collapsing the state. Returns bits in
    /// qubit order.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<u8> {
        (0..self.num_qubits).map(|q| self.measure(q, rng)).collect()
    }

    /// Samples `shots` full-register outcomes from the diagonal distribution without
    /// collapsing the state. Returns basis indices.
    pub fn sample_indices<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<usize> {
        let probs = self.probabilities();
        let total: f64 = probs.iter().sum();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * total;
                match cumulative.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
                    Ok(i) | Err(i) => i.min(probs.len() - 1),
                }
            })
            .collect()
    }

    /// Tensor product `self ⊗ other`: appends `other`'s qubits after this register's qubits.
    ///
    /// Used by eavesdropper models that attach an ancilla to a flying qubit.
    ///
    /// # Panics
    ///
    /// Panics if the combined register would exceed the 12-qubit density-matrix limit.
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        let total = self.num_qubits + other.num_qubits;
        assert!(
            total <= 12,
            "density-matrix simulation limited to 12 qubits"
        );
        DensityMatrix {
            num_qubits: total,
            rho: self.rho.kron(&other.rho),
        }
    }

    /// Partial trace keeping only the listed qubits (in the order given).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, has duplicates, or references qubits outside the register.
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        assert!(!keep.is_empty(), "must keep at least one qubit");
        for (i, &q) in keep.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!keep[..i].contains(&q), "duplicate qubit {q} in keep list");
        }
        let k = keep.len();
        let keep_shifts: Vec<usize> = keep.iter().map(|&q| self.num_qubits - 1 - q).collect();
        let traced: Vec<usize> = (0..self.num_qubits)
            .filter(|q| !keep.contains(q))
            .map(|q| self.num_qubits - 1 - q)
            .collect();
        let out_dim = 1usize << k;
        let mut out = CMatrix::zeros(out_dim, out_dim);
        let traced_dim = 1usize << traced.len();
        for row_sub in 0..out_dim {
            for col_sub in 0..out_dim {
                let mut acc = Complex64::ZERO;
                for env in 0..traced_dim {
                    let mut row = 0usize;
                    let mut col = 0usize;
                    for (bit_pos, &shift) in keep_shifts.iter().enumerate() {
                        if row_sub & (1 << (k - 1 - bit_pos)) != 0 {
                            row |= 1 << shift;
                        }
                        if col_sub & (1 << (k - 1 - bit_pos)) != 0 {
                            col |= 1 << shift;
                        }
                    }
                    for (env_pos, &shift) in traced.iter().enumerate() {
                        if env & (1 << env_pos) != 0 {
                            row |= 1 << shift;
                            col |= 1 << shift;
                        }
                    }
                    acc += self.rho[(row, col)];
                }
                out[(row_sub, col_sub)] = acc;
            }
        }
        DensityMatrix {
            num_qubits: k,
            rho: out,
        }
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` between this (possibly mixed) state and a pure reference state.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn fidelity_with_pure(&self, reference: &StateVector) -> f64 {
        assert_eq!(
            self.num_qubits,
            reference.num_qubits(),
            "fidelity of states with different register sizes"
        );
        let applied = self.rho.apply(reference.amplitudes());
        reference.amplitudes().inner(&applied).re.clamp(0.0, 1.0)
    }

    /// Expectation value `Tr(ρ O)` of a Hermitian observable on the full register.
    ///
    /// # Panics
    ///
    /// Panics if the observable dimension does not match.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        assert_eq!(
            observable.rows(),
            self.dim(),
            "observable dimension does not match register"
        );
        self.rho.matmul(observable).trace().re
    }

    /// Von Neumann entropy in bits, computed for single-qubit states only (uses the closed
    /// form for 2×2 Hermitian eigenvalues).
    ///
    /// # Panics
    ///
    /// Panics if called on a register with more than one qubit.
    pub fn entropy_single_qubit(&self) -> f64 {
        assert_eq!(
            self.num_qubits, 1,
            "entropy_single_qubit only supports single-qubit states"
        );
        let eigs = self.rho.eigenvalues_hermitian_2x2();
        -eigs
            .iter()
            .filter(|&&p| p > 1e-12)
            .map(|&p| p * p.log2())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn bell_density() -> DensityMatrix {
        let mut rho = DensityMatrix::new(2);
        rho.apply_single(&gates::hadamard(), 0);
        rho.apply_two(&gates::cnot(), 0, 1);
        rho
    }

    #[test]
    fn new_density_matrix_is_pure_zero_state() {
        let rho = DensityMatrix::new(2);
        assert_eq!(rho.num_qubits(), 2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_statevector_round_trip() {
        let mut psi = StateVector::new(2);
        psi.apply_single(&gates::hadamard(), 0);
        psi.apply_two(&gates::cnot(), 0, 1);
        let rho = DensityMatrix::from_statevector(&psi);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_matrix_validates() {
        let good = CMatrix::identity(2).scale(Complex64::real(0.5));
        assert!(DensityMatrix::from_matrix(good).is_ok());
        let not_square = CMatrix::zeros(2, 3);
        assert!(matches!(
            DensityMatrix::from_matrix(not_square),
            Err(QsimError::DimensionMismatch { .. })
        ));
        let not_normalised = CMatrix::identity(2);
        assert!(matches!(
            DensityMatrix::from_matrix(not_normalised),
            Err(QsimError::NotNormalized)
        ));
    }

    #[test]
    fn maximally_mixed_has_minimal_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let rho = bell_density();
        let probs = rho.probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[3] - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampled_kraus_step_matches_channel_statistics() {
        // bit_flip(0.25)-style Kraus pair applied as trajectory steps.
        let ops = vec![
            gates::identity().scale(Complex64::real(0.75f64.sqrt())),
            gates::pauli_x().scale(Complex64::real(0.25f64.sqrt())),
        ];
        let mut r = rng();
        let mut flips = 0;
        let n = 4000;
        for _ in 0..n {
            let mut rho = DensityMatrix::new(1);
            let branch = rho.apply_kraus_sampled(&ops, &[0], &mut r).unwrap();
            assert!((rho.trace() - 1.0).abs() < 1e-10, "branches renormalise");
            if branch == 1 {
                flips += 1;
                assert!((rho.probability_one(0) - 1.0).abs() < 1e-10);
            }
        }
        let frac = flips as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "flip fraction {frac}");
    }

    #[test]
    fn sampled_kraus_step_works_on_mixed_states() {
        // On the maximally mixed state every Pauli branch is equally likely
        // and leaves the state maximally mixed — the mixed-state case the
        // statevector unravelling cannot represent.
        let p: f64 = 0.8;
        let ops = vec![
            gates::identity().scale(Complex64::real((1.0 - 3.0 * p / 4.0).sqrt())),
            gates::pauli_x().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_y().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_z().scale(Complex64::real((p / 4.0).sqrt())),
        ];
        let mut r = rng();
        let mut rho = DensityMatrix::maximally_mixed(1);
        for _ in 0..20 {
            rho.apply_kraus_sampled(&ops, &[0], &mut r).unwrap();
            assert!((rho.trace() - 1.0).abs() < 1e-10);
            assert!((rho.purity() - 0.5).abs() < 1e-10);
        }
    }

    #[test]
    fn sampled_kraus_step_rejects_vanishing_and_invalid_branches() {
        let mut rho = bell_density();
        let before = rho.clone();
        let mut r = rng();
        assert_eq!(
            rho.apply_kraus_sampled(&[gates::identity().scale(Complex64::ZERO)], &[0], &mut r),
            Err(QsimError::ZeroNorm)
        );
        assert_eq!(rho, before, "a failed step leaves the state untouched");
        assert!(matches!(
            rho.apply_kraus_sampled(&[gates::identity()], &[7], &mut r),
            Err(QsimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn pure_states_round_trip_through_as_pure_state() {
        let mut psi = StateVector::new(2);
        psi.apply_single(&gates::hadamard(), 0);
        psi.apply_two(&gates::cnot(), 0, 1);
        psi.apply_single(&gates::pauli_z(), 1); // give an amplitude a sign
        let rho = DensityMatrix::from_statevector(&psi);
        let extracted = rho.as_pure_state(1e-9).expect("state is pure");
        // Equal up to global phase ⇒ fidelity 1 and identical density matrix.
        assert!((extracted.fidelity(&psi) - 1.0).abs() < 1e-10);
        assert!(DensityMatrix::from_statevector(&extracted)
            .matrix()
            .approx_eq(rho.matrix(), 1e-10));
    }

    #[test]
    fn mixed_states_have_no_pure_extraction() {
        assert!(DensityMatrix::maximally_mixed(2)
            .as_pure_state(1e-9)
            .is_none());
        let mut slightly_mixed = bell_density();
        slightly_mixed.apply_kraus(
            &[
                gates::identity().scale(Complex64::real(0.9f64.sqrt())),
                gates::pauli_z().scale(Complex64::real(0.1f64.sqrt())),
            ],
            &[0],
        );
        assert!(slightly_mixed.as_pure_state(1e-9).is_none());
    }

    #[test]
    fn apply_unitary_validates_input() {
        let mut rho = DensityMatrix::new(2);
        assert!(matches!(
            rho.try_apply_unitary(&gates::cnot(), &[0, 0]),
            Err(QsimError::DuplicateQubit(0))
        ));
        assert!(matches!(
            rho.try_apply_unitary(&gates::hadamard(), &[4]),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            rho.try_apply_unitary(&gates::hadamard(), &[0, 1]),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn depolarizing_kraus_reduces_purity() {
        // Hand-rolled depolarizing channel with p = 0.5 on a pure |0⟩ state.
        let p: f64 = 0.5;
        let kraus = vec![
            gates::identity().scale(Complex64::real((1.0 - 3.0 * p / 4.0).sqrt())),
            gates::pauli_x().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_y().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_z().scale(Complex64::real((p / 4.0).sqrt())),
        ];
        let mut rho = DensityMatrix::new(1);
        rho.apply_kraus(&kraus, &[0]);
        assert!(
            (rho.trace() - 1.0).abs() < 1e-10,
            "CPTP map preserves trace"
        );
        assert!(rho.purity() < 1.0);
        // Probability of |1⟩ after depolarizing |0⟩ with p=0.5 is p/2 = 0.25.
        assert!((rho.probability_one(0) - 0.25).abs() < 1e-10);
    }

    #[test]
    fn empty_kraus_list_is_a_no_op() {
        let mut rho = bell_density();
        let before = rho.clone();
        rho.apply_kraus(&[], &[0]);
        assert_eq!(rho, before);
    }

    #[test]
    fn measurement_statistics_on_bell_state() {
        let mut r = rng();
        let mut agree = 0;
        for _ in 0..200 {
            let mut rho = bell_density();
            let a = rho.measure(0, &mut r);
            let b = rho.measure(1, &mut r);
            if a == b {
                agree += 1;
            }
        }
        assert_eq!(agree, 200, "Φ+ halves must always agree in the Z basis");
    }

    #[test]
    fn collapse_renormalises() {
        let mut rho = bell_density();
        rho.collapse(0, 1);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!((rho.probabilities()[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_onto_impossible_outcome_panics() {
        let mut rho = DensityMatrix::new(1);
        rho.collapse(0, 1);
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let rho = bell_density();
        let reduced = rho.partial_trace(&[0]);
        assert_eq!(reduced.num_qubits(), 1);
        assert!((reduced.purity() - 0.5).abs() < 1e-10);
        assert!((reduced.probability_one(0) - 0.5).abs() < 1e-10);
        // Entropy of the reduced state of a maximally entangled pair is 1 bit.
        assert!((reduced.entropy_single_qubit() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_trace_of_product_state_keeps_the_factor() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_single(&gates::pauli_x(), 1); // |01⟩
        let q0 = rho.partial_trace(&[0]);
        assert!((q0.probability_one(0) - 0.0).abs() < 1e-12);
        let q1 = rho.partial_trace(&[1]);
        assert!((q1.probability_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_in_basis_statistics() {
        // |0⟩ measured in B(π/4): probabilities are 1/2, 1/2.
        let mut r = rng();
        let mut plus = 0;
        let n = 2000;
        for _ in 0..n {
            let mut rho = DensityMatrix::new(1);
            if rho
                .measure_in_basis(0, std::f64::consts::FRAC_PI_4, &mut r)
                .is_plus()
            {
                plus += 1;
            }
        }
        let frac = plus as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn expectation_matches_statevector_backend() {
        let rho = bell_density();
        let mut psi = StateVector::new(2);
        psi.apply_single(&gates::hadamard(), 0);
        psi.apply_two(&gates::cnot(), 0, 1);
        let obs = gates::pauli_z().kron(&gates::pauli_z());
        assert!((rho.expectation(&obs) - psi.expectation(&obs)).abs() < 1e-10);
    }

    #[test]
    fn sample_indices_only_returns_supported_outcomes() {
        let rho = bell_density();
        let mut r = rng();
        let samples = rho.sample_indices(1000, &mut r);
        assert!(samples.iter().all(|&i| i == 0 || i == 3));
    }

    #[test]
    fn measure_all_collapses_everything() {
        let mut rho = bell_density();
        let mut r = rng();
        let bits = rho.measure_all(&mut r);
        assert_eq!(bits.len(), 2);
        assert_eq!(bits[0], bits[1]);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tensor_product_appends_qubits() {
        let mut a = DensityMatrix::new(1);
        a.apply_single(&gates::pauli_x(), 0); // |1⟩
        let b = DensityMatrix::new(1); // |0⟩
        let ab = a.tensor(&b);
        assert_eq!(ab.num_qubits(), 2);
        // |10⟩ = index 2
        assert!((ab.probabilities()[2] - 1.0).abs() < 1e-12);
        // Tracing out the appended qubit recovers the original.
        let back = ab.partial_trace(&[0]);
        assert!((back.probability_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn embed_operator_matches_kron_for_adjacent_qubits() {
        // Embedding X on qubit 1 of 2 should equal I ⊗ X.
        let embedded = embed_operator(&gates::pauli_x(), &[1], 2);
        let expected = gates::identity().kron(&gates::pauli_x());
        assert!(embedded.approx_eq(&expected, 1e-12));
        // Embedding on qubit 0 should equal X ⊗ I.
        let embedded = embed_operator(&gates::pauli_x(), &[0], 2);
        let expected = gates::pauli_x().kron(&gates::identity());
        assert!(embedded.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn embed_operator_handles_reversed_qubit_order() {
        // CNOT with control = qubit 1, target = qubit 0 maps |01⟩ → |11⟩.
        let embedded = embed_operator(&gates::cnot(), &[1, 0], 2);
        let mut rho = DensityMatrix::new(2);
        rho.apply_single(&gates::pauli_x(), 1); // |01⟩
        rho.apply_unitary(&gates::cnot(), &[1, 0]);
        assert!((rho.probabilities()[3] - 1.0).abs() < 1e-12);
        assert!(embedded.is_unitary(1e-12));
    }
}
