//! Shot-count histograms.
//!
//! IBM back-ends report experiment results as a map from classical bitstring to the number of
//! shots that produced it (the paper's Fig. 2 is exactly such a histogram with 1024 shots).
//! [`Counts`] reproduces that interface.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A histogram of measurement outcomes keyed by bitstring.
///
/// # Examples
///
/// ```rust
/// use qsim::counts::Counts;
///
/// let mut counts = Counts::new();
/// counts.record("00");
/// counts.record("00");
/// counts.record("11");
/// assert_eq!(counts.total(), 3);
/// assert_eq!(counts.get("00"), 2);
/// assert_eq!(counts.most_frequent(), Some(("00", 2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counts {
    histogram: BTreeMap<String, u64>,
}

impl Counts {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds counts from an iterator of bitstrings.
    pub fn from_outcomes<I, S>(outcomes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut counts = Self::new();
        for o in outcomes {
            counts.record(o);
        }
        counts
    }

    /// Records a single observation of `outcome`.
    pub fn record<S: Into<String>>(&mut self, outcome: S) {
        *self.histogram.entry(outcome.into()).or_insert(0) += 1;
    }

    /// Records `n` observations of `outcome` at once.
    pub fn record_many<S: Into<String>>(&mut self, outcome: S, n: u64) {
        if n > 0 {
            *self.histogram.entry(outcome.into()).or_insert(0) += n;
        }
    }

    /// Number of shots recorded for `outcome` (0 when never seen).
    pub fn get(&self, outcome: &str) -> u64 {
        self.histogram.get(outcome).copied().unwrap_or(0)
    }

    /// Total number of shots.
    pub fn total(&self) -> u64 {
        self.histogram.values().sum()
    }

    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.histogram.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.histogram.is_empty()
    }

    /// Relative frequency of `outcome` (0 when no shots at all).
    pub fn frequency(&self, outcome: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / total as f64
        }
    }

    /// The most frequent outcome and its count (ties broken by lexicographic order).
    pub fn most_frequent(&self) -> Option<(&str, u64)> {
        self.histogram
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterator over `(bitstring, count)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.histogram.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Counts) {
        for (k, v) in &other.histogram {
            *self.histogram.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Empirical probability distribution over the given outcome labels (missing labels get
    /// probability 0; outcomes not in `labels` are ignored).
    pub fn distribution(&self, labels: &[&str]) -> Vec<f64> {
        labels.iter().map(|l| self.frequency(l)).collect()
    }

    /// Classical (Bhattacharyya-squared style) fidelity with an ideal probability
    /// distribution over the given labels: `F = (Σ √(p_i q_i))²`.
    ///
    /// This is the quantity the paper reports as "fidelity of the final measurement outcome
    /// compared to the ideal simulation" (≥ 0.95 in Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `labels` and `ideal` have different lengths.
    pub fn fidelity_with(&self, labels: &[&str], ideal: &[f64]) -> f64 {
        assert_eq!(
            labels.len(),
            ideal.len(),
            "labels and ideal distribution must have equal length"
        );
        let empirical = self.distribution(labels);
        let overlap: f64 = empirical
            .iter()
            .zip(ideal.iter())
            .map(|(p, q)| (p * q).sqrt())
            .sum();
        overlap * overlap
    }

    /// Fraction of shots equal to the single expected outcome — the "accuracy" metric of
    /// the paper's Fig. 3.
    pub fn accuracy(&self, expected: &str) -> f64 {
        self.frequency(expected)
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.histogram.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<String> for Counts {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Self::from_outcomes(iter)
    }
}

impl Extend<String> for Counts {
    fn extend<I: IntoIterator<Item = String>>(&mut self, iter: I) {
        for o in iter {
            self.record(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new();
        c.record_many("00", 957);
        c.record_many("01", 40);
        c.record_many("10", 25);
        c.record_many("11", 2);
        c
    }

    #[test]
    fn recording_and_totals() {
        let c = sample();
        assert_eq!(c.total(), 1024);
        assert_eq!(c.distinct(), 4);
        assert_eq!(c.get("00"), 957);
        assert_eq!(c.get("absent"), 0);
        assert!(!c.is_empty());
        assert!(Counts::new().is_empty());
    }

    #[test]
    fn record_many_zero_is_ignored() {
        let mut c = Counts::new();
        c.record_many("00", 0);
        assert!(c.is_empty());
    }

    #[test]
    fn frequencies_and_accuracy() {
        let c = sample();
        assert!((c.frequency("00") - 957.0 / 1024.0).abs() < 1e-12);
        assert!((c.accuracy("00") - 957.0 / 1024.0).abs() < 1e-12);
        assert_eq!(Counts::new().frequency("00"), 0.0);
    }

    #[test]
    fn most_frequent_picks_the_mode() {
        let c = sample();
        assert_eq!(c.most_frequent(), Some(("00", 957)));
        assert_eq!(Counts::new().most_frequent(), None);
    }

    #[test]
    fn merge_adds_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 2048);
        assert_eq!(a.get("11"), 4);
    }

    #[test]
    fn distribution_over_fixed_labels() {
        let c = sample();
        let d = c.distribution(&["00", "01", "10", "11"]);
        assert_eq!(d.len(), 4);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let with_missing = c.distribution(&["00", "zz"]);
        assert_eq!(with_missing[1], 0.0);
    }

    #[test]
    fn fidelity_against_ideal_point_mass() {
        // The Fig. 2(a) histogram: ideal distribution is a point mass on "00".
        let c = sample();
        let f = c.fidelity_with(&["00", "01", "10", "11"], &[1.0, 0.0, 0.0, 0.0]);
        assert!((f - 957.0 / 1024.0).abs() < 1e-12);
        assert!(f >= 0.93, "paper reports ≥0.95-ish fidelity for η=10");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn fidelity_with_mismatched_lengths_panics() {
        let c = sample();
        let _ = c.fidelity_with(&["00"], &[0.5, 0.5]);
    }

    #[test]
    fn iterator_and_from_iterator() {
        let c: Counts = vec!["0".to_string(), "1".to_string(), "0".to_string()]
            .into_iter()
            .collect();
        assert_eq!(c.get("0"), 2);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![("0", 2), ("1", 1)]);
        let mut c2 = Counts::new();
        c2.extend(vec!["1".to_string()]);
        assert_eq!(c2.get("1"), 1);
    }

    #[test]
    fn display_contains_all_outcomes() {
        let c = sample();
        let text = c.to_string();
        for key in ["00", "01", "10", "11"] {
            assert!(text.contains(key));
        }
    }
}
