//! CHSH polynomial estimation.
//!
//! Both rounds of the DI security check estimate the CHSH polynomial
//! `S = ⟨a1 b1⟩ + ⟨a1 b2⟩ + ⟨a2 b1⟩ − ⟨a2 b2⟩` from measurement records collected on the
//! check pairs; the protocol continues only if `S > 2` (no local-hidden-variable model).
//! This module provides the record type, the finite-sample estimator and the analytic value
//! for an arbitrary two-qubit state.

use crate::measurement::{MeasurementBasis, MeasurementOutcome};
use crate::statevector::StateVector;
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use serde::{Deserialize, Serialize};

/// The ideal CHSH value achievable by quantum mechanics (Tsirelson's bound), `2√2`.
pub const TSIRELSON_BOUND: f64 = 2.0 * std::f64::consts::SQRT_2;

/// The classical (local-hidden-variable) CHSH bound.
pub const CLASSICAL_BOUND: f64 = 2.0;

/// One DI-check measurement event: which bases Alice and Bob chose and what they observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Index of Alice's basis (1 or 2 participate in CHSH; 0 is the key-round basis `A0`).
    pub alice_setting: usize,
    /// Index of Bob's basis (1 or 2).
    pub bob_setting: usize,
    /// Alice's ±1 outcome.
    pub alice_outcome: MeasurementOutcome,
    /// Bob's ±1 outcome.
    pub bob_outcome: MeasurementOutcome,
}

impl MeasurementRecord {
    /// Creates a record.
    pub fn new(
        alice_setting: usize,
        bob_setting: usize,
        alice_outcome: MeasurementOutcome,
        bob_outcome: MeasurementOutcome,
    ) -> Self {
        Self {
            alice_setting,
            bob_setting,
            alice_outcome,
            bob_outcome,
        }
    }

    /// The product of the two ±1 outcomes.
    pub fn product(&self) -> f64 {
        self.alice_outcome.value() * self.bob_outcome.value()
    }
}

/// Estimates the correlator `⟨a_j b_k⟩` from the records with Alice setting `j` and Bob
/// setting `k`. Returns `None` when no record matches (the caller decides whether that is an
/// abort condition).
pub fn correlator(
    records: &[MeasurementRecord],
    alice_setting: usize,
    bob_setting: usize,
) -> Option<f64> {
    let matching: Vec<f64> = records
        .iter()
        .filter(|r| r.alice_setting == alice_setting && r.bob_setting == bob_setting)
        .map(MeasurementRecord::product)
        .collect();
    if matching.is_empty() {
        None
    } else {
        Some(matching.iter().sum::<f64>() / matching.len() as f64)
    }
}

/// Estimates the CHSH polynomial `S = ⟨a1 b1⟩ + ⟨a1 b2⟩ + ⟨a2 b1⟩ − ⟨a2 b2⟩` from measurement
/// records. Returns `None` if any of the four setting combinations has no data.
pub fn chsh_value(records: &[MeasurementRecord]) -> Option<f64> {
    let e11 = correlator(records, 1, 1)?;
    let e12 = correlator(records, 1, 2)?;
    let e21 = correlator(records, 2, 1)?;
    let e22 = correlator(records, 2, 2)?;
    Some(e11 + e12 + e21 - e22)
}

/// The observable measured by a basis `B(θ) = {|0⟩ ± e^{iθ}|1⟩}`: `cos θ·X + sin θ·Y`.
pub fn basis_observable(theta: f64) -> CMatrix {
    let x = crate::gates::pauli_x();
    let y = crate::gates::pauli_y();
    &x.scale(Complex64::real(theta.cos())) + &y.scale(Complex64::real(theta.sin()))
}

/// Analytic correlator `⟨O(θ_A) ⊗ O(θ_B)⟩` for an arbitrary two-qubit pure state.
pub fn analytic_correlator(state: &StateVector, theta_a: f64, theta_b: f64) -> f64 {
    assert_eq!(
        state.num_qubits(),
        2,
        "analytic correlator is defined for two qubits"
    );
    let obs = basis_observable(theta_a).kron(&basis_observable(theta_b));
    state.expectation(&obs)
}

/// Analytic CHSH value of a two-qubit pure state using the protocol's measurement bases.
pub fn analytic_chsh(state: &StateVector) -> f64 {
    let a1 = MeasurementBasis::alice(1).angle();
    let a2 = MeasurementBasis::alice(2).angle();
    let b1 = MeasurementBasis::bob(1).angle();
    let b2 = MeasurementBasis::bob(2).angle();
    analytic_correlator(state, a1, b1)
        + analytic_correlator(state, a1, b2)
        + analytic_correlator(state, a2, b1)
        - analytic_correlator(state, a2, b2)
}

/// Standard error of the CHSH estimate with `n` samples per setting pair, assuming the worst
/// case variance of a ±1 product (used to size the check-pair budget `d`).
pub fn chsh_standard_error(samples_per_setting: usize) -> f64 {
    if samples_per_setting == 0 {
        f64::INFINITY
    } else {
        // Var(ab) ≤ 1 for ±1 variables; four independent correlators add in quadrature.
        2.0 / (samples_per_setting as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::BellState;
    use crate::measurement::MeasurementOutcome::{Minus, Plus};

    #[test]
    fn tsirelson_bound_value() {
        assert!((TSIRELSON_BOUND - 2.828_427).abs() < 1e-5);
        assert_eq!(CLASSICAL_BOUND, 2.0);
    }

    #[test]
    fn correlator_of_perfectly_correlated_records() {
        let records = vec![
            MeasurementRecord::new(1, 1, Plus, Plus),
            MeasurementRecord::new(1, 1, Minus, Minus),
            MeasurementRecord::new(1, 2, Plus, Minus),
        ];
        assert_eq!(correlator(&records, 1, 1), Some(1.0));
        assert_eq!(correlator(&records, 1, 2), Some(-1.0));
        assert_eq!(correlator(&records, 2, 2), None);
    }

    #[test]
    fn chsh_value_requires_all_settings() {
        let mut records = vec![
            MeasurementRecord::new(1, 1, Plus, Plus),
            MeasurementRecord::new(1, 2, Plus, Plus),
            MeasurementRecord::new(2, 1, Plus, Plus),
        ];
        assert_eq!(chsh_value(&records), None);
        records.push(MeasurementRecord::new(2, 2, Plus, Minus));
        assert_eq!(chsh_value(&records), Some(4.0));
    }

    #[test]
    fn record_product() {
        assert_eq!(MeasurementRecord::new(1, 1, Plus, Minus).product(), -1.0);
        assert_eq!(MeasurementRecord::new(1, 1, Minus, Minus).product(), 1.0);
    }

    #[test]
    fn analytic_chsh_of_phi_plus_reaches_tsirelson() {
        let state = BellState::PhiPlus.statevector();
        let s = analytic_chsh(&state);
        assert!(
            (s - TSIRELSON_BOUND).abs() < 1e-10,
            "Φ+ with the protocol bases must reach 2√2, got {s}"
        );
    }

    #[test]
    fn analytic_chsh_of_product_state_respects_classical_bound() {
        let state = StateVector::new(2); // |00⟩
        let s = analytic_chsh(&state);
        assert!(
            s.abs() <= CLASSICAL_BOUND + 1e-9,
            "separable state must not violate CHSH, got {s}"
        );
    }

    #[test]
    fn analytic_correlator_matches_cosine_law() {
        // For Φ+ and equatorial observables, E(θa, θb) = cos(θa + θb).
        let state = BellState::PhiPlus.statevector();
        for (ta, tb) in [(0.0, 0.3), (0.7, -0.2), (1.2, 1.2)] {
            let e = analytic_correlator(&state, ta, tb);
            assert!((e - (ta + tb).cos()).abs() < 1e-10);
        }
    }

    #[test]
    fn basis_observable_is_hermitian_and_unit_eigenvalues() {
        for theta in [0.0, 0.4, -1.3] {
            let o = basis_observable(theta);
            assert!(o.is_hermitian(1e-12));
            let eigs = o.eigenvalues_hermitian_2x2();
            assert!((eigs[0] + 1.0).abs() < 1e-12);
            assert!((eigs[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_error_shrinks_with_samples() {
        assert!(chsh_standard_error(0).is_infinite());
        assert!(chsh_standard_error(100) < chsh_standard_error(25));
        assert!((chsh_standard_error(400) - 0.1).abs() < 1e-12);
    }
}
