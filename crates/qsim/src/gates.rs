//! The gate library.
//!
//! Every unitary the UA-DI-QSDC emulation needs, as plain [`CMatrix`] constructors:
//! Pauli operators (the protocol's message/identity encoding alphabet), Hadamard, phase and
//! rotation gates, the general single-qubit `U(θ, φ, λ)`, the basis-change unitary for the
//! DI-check measurement bases `B(θ) = {(|0⟩ + e^{iθ}|1⟩)/√2, (|0⟩ − e^{iθ}|1⟩)/√2}`, and the
//! two-qubit CNOT / CZ / SWAP gates used for Bell-pair preparation and Bell-state measurement.

use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use std::f64::consts::FRAC_1_SQRT_2;

/// 2×2 identity gate.
///
/// The paper models the quantum channel between Alice and Bob as a chain of η identity gates,
/// so this innocuous gate is actually the star of the evaluation section.
pub fn identity() -> CMatrix {
    CMatrix::identity(2)
}

/// Pauli-X (bit flip, σx).
pub fn pauli_x() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex64::ZERO, Complex64::ONE],
        vec![Complex64::ONE, Complex64::ZERO],
    ])
}

/// Pauli-Y (σy).
pub fn pauli_y() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex64::ZERO, -Complex64::I],
        vec![Complex64::I, Complex64::ZERO],
    ])
}

/// Pauli-Z (phase flip, σz).
pub fn pauli_z() -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, -Complex64::ONE])
}

/// `iσy` — the fourth encoding operator of the protocol (encodes the bit pair `11`).
///
/// Using `iσy` instead of `σy` keeps the matrix real, exactly as in the paper.
pub fn i_pauli_y() -> CMatrix {
    pauli_y().scale(Complex64::I)
}

/// Hadamard gate.
pub fn hadamard() -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex64::ONE, Complex64::ONE],
        vec![Complex64::ONE, -Complex64::ONE],
    ])
    .scale(Complex64::real(FRAC_1_SQRT_2))
}

/// Phase gate S = diag(1, i).
pub fn s_gate() -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, Complex64::I])
}

/// Adjoint phase gate S† = diag(1, −i).
pub fn s_dagger() -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, -Complex64::I])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t_gate() -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, Complex64::cis(std::f64::consts::FRAC_PI_4)])
}

/// Adjoint T gate.
pub fn t_dagger() -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, Complex64::cis(-std::f64::consts::FRAC_PI_4)])
}

/// Rotation about the X axis by `theta`.
pub fn rx(theta: f64) -> CMatrix {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::imag(-(theta / 2.0).sin());
    CMatrix::from_rows(&[vec![c, s], vec![s, c]])
}

/// Rotation about the Y axis by `theta`.
pub fn ry(theta: f64) -> CMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    CMatrix::from_rows(&[
        vec![Complex64::real(c), Complex64::real(-s)],
        vec![Complex64::real(s), Complex64::real(c)],
    ])
}

/// Rotation about the Z axis by `theta`.
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::diagonal(&[Complex64::cis(-theta / 2.0), Complex64::cis(theta / 2.0)])
}

/// Phase gate `P(λ) = diag(1, e^{iλ})`.
pub fn phase(lambda: f64) -> CMatrix {
    CMatrix::diagonal(&[Complex64::ONE, Complex64::cis(lambda)])
}

/// General single-qubit unitary `U(θ, φ, λ)` in the standard OpenQASM parameterisation.
///
/// ```text
/// U = [[cos(θ/2),            -e^{iλ} sin(θ/2)       ],
///      [e^{iφ} sin(θ/2),      e^{i(φ+λ)} cos(θ/2)   ]]
/// ```
pub fn u3(theta: f64, phi: f64, lambda: f64) -> CMatrix {
    let half = theta / 2.0;
    CMatrix::from_rows(&[
        vec![
            Complex64::real(half.cos()),
            -Complex64::cis(lambda) * half.sin(),
        ],
        vec![
            Complex64::cis(phi) * half.sin(),
            Complex64::cis(phi + lambda) * half.cos(),
        ],
    ])
}

/// Basis-change unitary for the DI-check measurement basis
/// `B(θ) = {(|0⟩ + e^{iθ}|1⟩)/√2, (|0⟩ − e^{iθ}|1⟩)/√2}`.
///
/// The returned matrix `V(θ)` maps the basis vectors onto the computational basis,
/// i.e. measuring in `B(θ)` is equivalent to applying `V(θ)` and measuring in Z.
/// Column `k` of `V(θ)†` is the `k`-th basis vector.
pub fn basis_change(theta: f64) -> CMatrix {
    // Basis vectors: b0 = (|0⟩ + e^{iθ}|1⟩)/√2, b1 = (|0⟩ − e^{iθ}|1⟩)/√2.
    // V = Σ_k |k⟩⟨b_k| so V has ⟨b_k| as rows.
    let e = Complex64::cis(theta).conj();
    CMatrix::from_rows(&[
        vec![Complex64::real(FRAC_1_SQRT_2), e * FRAC_1_SQRT_2],
        vec![Complex64::real(FRAC_1_SQRT_2), -e * FRAC_1_SQRT_2],
    ])
}

/// CNOT with qubit ordering (control, target): `|c t⟩ → |c, t ⊕ c⟩`.
pub fn cnot() -> CMatrix {
    let mut m = CMatrix::zeros(4, 4);
    m[(0, 0)] = Complex64::ONE; // |00⟩ → |00⟩
    m[(1, 1)] = Complex64::ONE; // |01⟩ → |01⟩
    m[(2, 3)] = Complex64::ONE; // |11⟩ → |10⟩
    m[(3, 2)] = Complex64::ONE; // |10⟩ → |11⟩
    m
}

/// Controlled-Z gate (symmetric in its qubits).
pub fn cz() -> CMatrix {
    CMatrix::diagonal(&[
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ONE,
        -Complex64::ONE,
    ])
}

/// SWAP gate.
pub fn swap() -> CMatrix {
    let mut m = CMatrix::zeros(4, 4);
    m[(0, 0)] = Complex64::ONE;
    m[(1, 2)] = Complex64::ONE;
    m[(2, 1)] = Complex64::ONE;
    m[(3, 3)] = Complex64::ONE;
    m
}

/// Controlled version of an arbitrary single-qubit unitary, control on the first qubit.
///
/// # Panics
///
/// Panics if `u` is not 2×2.
pub fn controlled(u: &CMatrix) -> CMatrix {
    assert!(
        u.rows() == 2 && u.cols() == 2,
        "controlled() requires a single-qubit unitary"
    );
    let mut m = CMatrix::identity(4);
    for i in 0..2 {
        for j in 0..2 {
            m[(2 + i, 2 + j)] = u[(i, j)];
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::vector::CVector;
    use mathkit::DEFAULT_TOLERANCE;

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        let gates: Vec<(&str, CMatrix)> = vec![
            ("I", identity()),
            ("X", pauli_x()),
            ("Y", pauli_y()),
            ("Z", pauli_z()),
            ("iY", i_pauli_y()),
            ("H", hadamard()),
            ("S", s_gate()),
            ("S†", s_dagger()),
            ("T", t_gate()),
            ("T†", t_dagger()),
            ("RX", rx(0.7)),
            ("RY", ry(-1.3)),
            ("RZ", rz(2.1)),
            ("P", phase(0.9)),
            ("U3", u3(0.4, 1.1, -0.6)),
            ("B(π/4)", basis_change(std::f64::consts::FRAC_PI_4)),
        ];
        for (name, g) in gates {
            assert!(g.is_unitary(DEFAULT_TOLERANCE), "{name} is not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [cnot(), cz(), swap(), controlled(&hadamard())] {
            assert!(g.is_unitary(DEFAULT_TOLERANCE));
        }
    }

    #[test]
    fn cnot_truth_table() {
        let g = cnot();
        // |10⟩ (index 2) → |11⟩ (index 3)
        let v = g.apply(&CVector::basis(4, 2));
        assert!((v.probability(3) - 1.0).abs() < 1e-12);
        // |11⟩ → |10⟩
        let v = g.apply(&CVector::basis(4, 3));
        assert!((v.probability(2) - 1.0).abs() < 1e-12);
        // |00⟩, |01⟩ unchanged
        for idx in [0usize, 1] {
            let v = g.apply(&CVector::basis(4, idx));
            assert!((v.probability(idx) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let g = swap();
        let v = g.apply(&CVector::basis(4, 1)); // |01⟩ → |10⟩
        assert!((v.probability(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn s_and_t_gates_compose() {
        // T² = S, S² = Z
        assert!(t_gate().matmul(&t_gate()).approx_eq(&s_gate(), 1e-12));
        assert!(s_gate().matmul(&s_gate()).approx_eq(&pauli_z(), 1e-12));
        assert!(s_gate().matmul(&s_dagger()).approx_eq(&identity(), 1e-12));
        assert!(t_gate().matmul(&t_dagger()).approx_eq(&identity(), 1e-12));
    }

    #[test]
    fn hadamard_conjugates_x_and_z() {
        // HXH = Z and HZH = X
        let h = hadamard();
        assert!(h.matmul(&pauli_x()).matmul(&h).approx_eq(&pauli_z(), 1e-12));
        assert!(h.matmul(&pauli_z()).matmul(&h).approx_eq(&pauli_x(), 1e-12));
    }

    #[test]
    fn i_pauli_y_is_real_and_encodes_11() {
        let g = i_pauli_y();
        // iY = [[0, 1], [-1, 0]]
        assert_eq!(g[(0, 1)], Complex64::ONE);
        assert_eq!(g[(1, 0)], -Complex64::ONE);
        assert!(g.is_unitary(1e-12));
        // iY = X·Z (the composition of bit and phase flip), up to sign conventions: XZ = -iY.
        let xz = pauli_x().matmul(&pauli_z());
        assert!(xz.approx_eq(&g.scale(-Complex64::ONE), 1e-12));
    }

    #[test]
    fn rotation_gates_at_special_angles() {
        use std::f64::consts::PI;
        // RX(π) = -iX
        assert!(rx(PI).approx_eq(&pauli_x().scale(-Complex64::I), 1e-12));
        // RY(π) = -iY
        assert!(ry(PI).approx_eq(&pauli_y().scale(-Complex64::I), 1e-12));
        // RZ(π) = -iZ
        assert!(rz(PI).approx_eq(&pauli_z().scale(-Complex64::I), 1e-12));
        // Zero-angle rotations are the identity.
        for g in [rx(0.0), ry(0.0), rz(0.0), phase(0.0)] {
            assert!(g.approx_eq(&identity(), 1e-12));
        }
    }

    #[test]
    fn u3_reduces_to_named_gates() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U(π/2, 0, π) = H
        assert!(u3(FRAC_PI_2, 0.0, PI).approx_eq(&hadamard(), 1e-12));
        // U(π, 0, π) = X
        assert!(u3(PI, 0.0, PI).approx_eq(&pauli_x(), 1e-12));
        // U(0, 0, λ) = P(λ)
        assert!(u3(0.0, 0.0, 1.234).approx_eq(&phase(1.234), 1e-12));
    }

    #[test]
    fn basis_change_maps_basis_vectors_to_computational_basis() {
        let theta = 0.77;
        let v = basis_change(theta);
        // b0 = (|0⟩ + e^{iθ}|1⟩)/√2 should map to |0⟩.
        let b0 = CVector::new(vec![
            Complex64::real(FRAC_1_SQRT_2),
            Complex64::cis(theta) * FRAC_1_SQRT_2,
        ]);
        let mapped = v.apply(&b0);
        assert!((mapped.probability(0) - 1.0).abs() < 1e-12);
        // b1 maps to |1⟩.
        let b1 = CVector::new(vec![
            Complex64::real(FRAC_1_SQRT_2),
            -Complex64::cis(theta) * FRAC_1_SQRT_2,
        ]);
        let mapped = v.apply(&b1);
        assert!((mapped.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn basis_change_at_zero_is_hadamard() {
        assert!(basis_change(0.0).approx_eq(&hadamard(), 1e-12));
    }

    #[test]
    fn controlled_gate_acts_only_on_control_one_subspace() {
        let ch = controlled(&hadamard());
        // |00⟩ and |01⟩ untouched.
        for idx in [0usize, 1] {
            let v = ch.apply(&CVector::basis(4, idx));
            assert!((v.probability(idx) - 1.0).abs() < 1e-12);
        }
        // |10⟩ → (|10⟩ + |11⟩)/√2
        let v = ch.apply(&CVector::basis(4, 2));
        assert!((v.probability(2) - 0.5).abs() < 1e-12);
        assert!((v.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "single-qubit unitary")]
    fn controlled_rejects_wrong_dimension() {
        let _ = controlled(&CMatrix::identity(4));
    }
}
