//! Precompiled, allocation-free channel kernels.
//!
//! The legacy channel path ([`DensityMatrix::try_apply_kraus`]) re-derives
//! everything on every application: each k-qubit Kraus operator is embedded
//! into the full `2^n × 2^n` space (`embed_operator`), three fresh matrices
//! are allocated per operator (`K·ρ`, `(K·ρ)·K†`, the accumulator), and the
//! target list is re-validated — per operator, per application, per trial.
//! For the sweep workloads this crate serves, the channel is **constant
//! across millions of trials**, so all of that work is loop-invariant.
//!
//! [`CompiledKraus`] hoists the loop-invariant work to a one-time compile
//! step and leaves only the arithmetic in the hot loop:
//!
//! - the embedded operator and its adjoint are precomputed once per
//!   `(operator, targets, num_qubits)`, with the operator additionally
//!   stored as a sparse `(row, col, value)` list in the exact iteration
//!   order of [`CMatrix::matmul`];
//! - target validation happens once, at compile time;
//! - every intermediate lives in a thread-local scratch arena that is
//!   reused across applications, so steady-state application performs
//!   **zero heap allocations**;
//! - the dim-4 case (the 2-qubit EPR pairs that dominate the paper's
//!   workloads) runs through a monomorphised fast path with the loop
//!   bounds known to the compiler.
//!
//! # Determinism contract
//!
//! Every kernel here replays the **exact floating-point operation
//! sequence** of the legacy path it replaces — the same products, in the
//! same order, with the same zero-skip rules — so results are equal by
//! `f64::to_bits`, not merely approximately. This is what lets the engine's
//! replay/shard/queue/campaign byte-identity suites keep passing while the
//! hot loop gets an order of magnitude faster. The sampled kernels consume
//! exactly one `f64` from the RNG per step, like their legacy counterparts,
//! so trial RNG streams stay aligned too.

use crate::density::{embed_operator, DensityMatrix};
use crate::error::QsimError;
use crate::statevector::{sample_branch_index, StateVector};
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use rand::Rng;
use std::cell::RefCell;

/// One Kraus operator, preprocessed for both the density and statevector
/// kernels.
#[derive(Debug, Clone)]
struct CompiledOp {
    /// Non-zero entries of the embedded operator in `(row, col, value)`
    /// form, ordered exactly as [`CMatrix::matmul`] iterates (row-major,
    /// columns ascending) — the same entries the legacy zero-skip visits.
    sparse: Vec<(u32, u32, Complex64)>,
    /// The embedded adjoint `K†`, dense row-major (`dim × dim`). Kept dense
    /// because the legacy second matmul iterates its rows densely, and the
    /// add-of-zero products it performs are part of the replayed operation
    /// sequence.
    adjoint: Vec<Complex64>,
    /// The raw (unembedded) operator, dense row-major
    /// (`gate_dim × gate_dim`), for the strided statevector kernel.
    gate: Vec<Complex64>,
}

/// A CPTP map compiled against a fixed `(targets, num_qubits)` placement.
///
/// Built once per channel placement (see
/// `noise::KrausChannel::compile`), then applied arbitrarily often with
/// no per-application embedding, validation, or heap allocation.
///
/// All three entry points are bit-identical to the legacy one-shot methods
/// they accelerate:
///
/// | compiled | replays |
/// |---|---|
/// | [`CompiledKraus::apply`] | [`DensityMatrix::try_apply_kraus`] |
/// | [`CompiledKraus::sample`] | [`StateVector::apply_kraus_sampled`] |
/// | [`CompiledKraus::sample_density`] | [`DensityMatrix::apply_kraus_sampled`] |
///
/// A unitary is the single-operator special case: compiling `[U]` gives an
/// in-place `ρ → U ρ U†` with the same guarantees.
#[derive(Debug, Clone)]
pub struct CompiledKraus {
    num_qubits: usize,
    dim: usize,
    gate_dim: usize,
    /// Bit mask of the targeted qubits' positions in a basis index.
    target_mask: usize,
    /// `offsets[sub]` = the basis-index bits of target sub-index `sub`
    /// (the OR-accumulated shifts of the legacy gather/scatter loops).
    offsets: Vec<usize>,
    ops: Vec<CompiledOp>,
}

/// Reusable per-thread scratch for every compiled kernel: first use grows
/// the buffers, steady state reuses them without touching the allocator.
#[derive(Debug, Default)]
struct Scratch {
    /// `K·ρ` (one `dim²` matrix).
    product: Vec<Complex64>,
    /// `(K·ρ)·K†` before accumulation (one `dim²` matrix).
    term: Vec<Complex64>,
    /// The accumulator of [`CompiledKraus::apply`], and the per-branch
    /// states/matrices of the sampled kernels (`ops × dim` or `ops × dim²`).
    acc: Vec<Complex64>,
    /// Gather/scatter block of the strided statevector kernel.
    block_in: Vec<Complex64>,
    block_out: Vec<Complex64>,
    /// Branch probabilities of the sampled kernels.
    probs: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Clears `buf` to `len` exact `+0.0` entries, reusing its capacity.
#[inline]
fn reset(buf: &mut Vec<Complex64>, len: usize) {
    buf.clear();
    buf.resize(len, Complex64::ZERO);
}

/// Accumulates one operator's term `K·ρ·K†` into `out`, replaying the exact
/// operation sequence of `embed_operator` + two [`CMatrix::matmul`]s + one
/// matrix add: the first product visits precisely the non-zero embedded
/// entries (in matmul order), the second re-checks its left factor against
/// zero at runtime and runs its inner loop densely (add-of-zero products
/// included), and the term is accumulated element-wise afterwards.
#[inline(always)]
fn accumulate_term(
    dim: usize,
    op: &CompiledOp,
    rho: &[Complex64],
    product: &mut [Complex64],
    term: &mut [Complex64],
    out: &mut [Complex64],
) {
    for &(row, col, value) in &op.sparse {
        let (i, k) = (row as usize, col as usize);
        let dst = &mut product[i * dim..(i + 1) * dim];
        let src = &rho[k * dim..(k + 1) * dim];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += value * *s;
        }
    }
    for i in 0..dim {
        for k in 0..dim {
            let aik = product[i * dim + k];
            if aik == Complex64::ZERO {
                continue;
            }
            let dst = &mut term[i * dim..(i + 1) * dim];
            let src = &op.adjoint[k * dim..(k + 1) * dim];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += aik * *s;
            }
        }
    }
    for (o, t) in out.iter_mut().zip(term.iter()) {
        *o += *t;
    }
}

/// Applies the unembedded operator to the targeted qubits of `amps` in
/// place — the strided gather/multiply/scatter of
/// [`StateVector::try_apply_unitary`], with the shifts and block offsets
/// precomputed.
#[inline(always)]
fn apply_strided(
    kraus: &CompiledKraus,
    op: &CompiledOp,
    amps: &mut [Complex64],
    block_in: &mut [Complex64],
    block_out: &mut [Complex64],
) {
    let gate_dim = kraus.gate_dim;
    for base in 0..kraus.dim {
        if base & kraus.target_mask != 0 {
            continue;
        }
        for (sub, slot) in block_in.iter_mut().enumerate() {
            *slot = amps[base | kraus.offsets[sub]];
        }
        for (row, out) in block_out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (col, &amp) in block_in.iter().enumerate() {
                acc += op.gate[row * gate_dim + col] * amp;
            }
            *out = acc;
        }
        for (sub, slot) in block_out.iter().enumerate() {
            amps[base | kraus.offsets[sub]] = *slot;
        }
    }
}

impl CompiledKraus {
    /// Compiles a Kraus-operator set against a fixed qubit placement.
    ///
    /// Validation (operator dimension vs. target count, range and
    /// duplicate checks — the per-call checks of the legacy path) happens
    /// here, once.
    ///
    /// # Errors
    ///
    /// The validation errors of [`DensityMatrix::try_apply_kraus`]:
    /// [`QsimError::DimensionMismatch`], [`QsimError::QubitOutOfRange`],
    /// [`QsimError::DuplicateQubit`].
    ///
    /// # Panics
    ///
    /// Panics if `operators` is empty (a channel needs at least one Kraus
    /// operator) or `num_qubits` is 0 or above the density-matrix cap (12).
    // detlint: allow(hot-path-alloc): one-time kernel compilation; apply_*/sample_* stay allocation-free
    pub fn compile(
        operators: &[CMatrix],
        targets: &[usize],
        num_qubits: usize,
    ) -> Result<Self, QsimError> {
        assert!(
            !operators.is_empty(),
            "cannot compile an empty Kraus-operator set"
        );
        assert!(
            num_qubits > 0 && num_qubits <= 12,
            "compiled kernels cover the density-matrix range (1..=12 qubits)"
        );
        let k = targets.len();
        let gate_dim = 1usize << k;
        for op in operators {
            if op.rows() != gate_dim || op.cols() != gate_dim {
                return Err(QsimError::DimensionMismatch {
                    expected: gate_dim,
                    actual: op.rows(),
                });
            }
        }
        for (i, &q) in targets.iter().enumerate() {
            if q >= num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits,
                });
            }
            if targets[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit(q));
            }
        }
        let dim = 1usize << num_qubits;
        let shifts: Vec<usize> = targets.iter().map(|&q| num_qubits - 1 - q).collect();
        let target_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let offsets: Vec<usize> = (0..gate_dim)
            .map(|sub| {
                let mut offset = 0usize;
                for (bit_pos, &shift) in shifts.iter().enumerate() {
                    if (sub >> (k - 1 - bit_pos)) & 1 == 1 {
                        offset |= 1 << shift;
                    }
                }
                offset
            })
            .collect();
        let ops = operators
            .iter()
            .map(|op| {
                let full = embed_operator(op, targets, num_qubits);
                let adjoint = full.adjoint();
                let mut sparse = Vec::new();
                for i in 0..dim {
                    for j in 0..dim {
                        let value = full[(i, j)];
                        if value != Complex64::ZERO {
                            sparse.push((i as u32, j as u32, value));
                        }
                    }
                }
                CompiledOp {
                    sparse,
                    adjoint: adjoint.as_slice().to_vec(),
                    gate: op.as_slice().to_vec(),
                }
            })
            .collect();
        Ok(Self {
            num_qubits,
            dim,
            gate_dim,
            target_mask,
            offsets,
            ops,
        })
    }

    /// Register size the kernel was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Full Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of Kraus operators (trajectory branches).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `false` always — a compiled kernel has at least one operator.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    #[inline]
    fn check_register(&self, actual: usize) {
        assert_eq!(
            actual, self.num_qubits,
            "kernel compiled for {} qubit(s) applied to a {}-qubit state",
            self.num_qubits, actual
        );
    }

    /// Applies the channel exactly — `ρ → Σ_i K_i ρ K_i†` — in place.
    ///
    /// Bit-identical to [`DensityMatrix::try_apply_kraus`] with the same
    /// operators and targets; allocation-free at steady state.
    ///
    /// # Panics
    ///
    /// Panics if `rho` has a different register size than the kernel was
    /// compiled for.
    pub fn apply(&self, rho: &mut DensityMatrix) {
        self.check_register(rho.num_qubits());
        let dim = self.dim;
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let Scratch {
                product, term, acc, ..
            } = scratch;
            reset(acc, dim * dim);
            let state = rho.matrix_mut().as_mut_slice();
            if dim == 4 {
                for op in &self.ops {
                    reset(product, 16);
                    reset(term, 16);
                    accumulate_term(4, op, state, product, term, acc);
                }
            } else {
                for op in &self.ops {
                    reset(product, dim * dim);
                    reset(term, dim * dim);
                    accumulate_term(dim, op, state, product, term, acc);
                }
            }
            state.copy_from_slice(acc);
        });
    }

    /// Applies one sampled trajectory step to a pure state: Born-samples a
    /// branch `i` with probability `‖K_i|ψ⟩‖²` and renormalises. Returns
    /// the selected branch index.
    ///
    /// Bit-identical to [`StateVector::apply_kraus_sampled`] (same branch
    /// probabilities, same single RNG draw, same renormalisation).
    ///
    /// # Errors
    ///
    /// [`QsimError::ZeroNorm`] when every branch has vanishing
    /// probability; the state is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `psi` has a different register size than the kernel was
    /// compiled for.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        psi: &mut StateVector,
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.check_register(psi.num_qubits());
        let dim = self.dim;
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let Scratch {
                acc,
                block_in,
                block_out,
                probs,
                ..
            } = scratch;
            reset(acc, self.ops.len() * dim);
            reset(block_in, self.gate_dim);
            reset(block_out, self.gate_dim);
            probs.clear();
            for (b, op) in self.ops.iter().enumerate() {
                let branch = &mut acc[b * dim..(b + 1) * dim];
                branch.copy_from_slice(psi.amplitudes().as_slice());
                apply_strided(self, op, branch, block_in, block_out);
                let mut probability = 0.0;
                for amplitude in branch.iter() {
                    probability += amplitude.norm_sqr();
                }
                probs.push(probability);
            }
            let index = sample_branch_index(probs, rng)?;
            // The same guard as `StateVector::try_renormalize`, on the same
            // norm value (`probs[index]` is the branch's norm² computed in
            // amplitude order, exactly as `CVector::norm_sqr` sums it).
            let norm = probs[index].sqrt();
            if !norm.is_finite() || norm <= StateVector::MIN_NORM {
                return Err(QsimError::ZeroNorm);
            }
            let factor = Complex64::real(1.0 / norm);
            let chosen = &acc[index * dim..(index + 1) * dim];
            for (amp, branch_amp) in psi
                .amplitudes_mut()
                .as_mut_slice()
                .iter_mut()
                .zip(chosen.iter())
            {
                *amp = *branch_amp * factor;
            }
            Ok(index)
        })
    }

    /// Applies one sampled trajectory step to a mixed state: Born-samples a
    /// branch `i` with probability `Tr(K_i ρ K_i†)` and renormalises.
    /// Returns the selected branch index.
    ///
    /// Bit-identical to [`DensityMatrix::apply_kraus_sampled`].
    ///
    /// # Errors
    ///
    /// [`QsimError::ZeroNorm`] when every branch has vanishing
    /// probability; the state is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `rho` has a different register size than the kernel was
    /// compiled for.
    pub fn sample_density<R: Rng + ?Sized>(
        &self,
        rho: &mut DensityMatrix,
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.check_register(rho.num_qubits());
        let dim = self.dim;
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let Scratch {
                product,
                term,
                acc,
                probs,
                ..
            } = scratch;
            reset(acc, self.ops.len() * dim * dim);
            probs.clear();
            let state = rho.matrix_mut().as_mut_slice();
            for (b, op) in self.ops.iter().enumerate() {
                let branch = &mut acc[b * dim * dim..(b + 1) * dim * dim];
                reset(product, dim * dim);
                reset(term, dim * dim);
                // The branch slot is already zeroed, so accumulating the
                // term into it reproduces the legacy `K·ρ·K†` exactly.
                accumulate_term(dim, op, state, product, term, branch);
                let mut trace = Complex64::ZERO;
                for i in 0..dim {
                    trace += branch[i * dim + i];
                }
                probs.push(trace.re);
            }
            let index = sample_branch_index(probs, rng)?;
            let factor = Complex64::real(1.0 / probs[index]);
            let chosen = &acc[index * dim * dim..(index + 1) * dim * dim];
            for (entry, branch_entry) in state.iter_mut().zip(chosen.iter()) {
                *entry = *branch_entry * factor;
            }
            Ok(index)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(m: &CMatrix) -> Vec<(u64, u64)> {
        m.as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    }

    /// A dim-8 mixed state with structure on every qubit.
    fn busy_state(num_qubits: usize) -> DensityMatrix {
        let mut rho = DensityMatrix::new(num_qubits);
        rho.apply_single(&gates::hadamard(), 0);
        for q in 1..num_qubits {
            rho.apply_two(&gates::cnot(), q - 1, q);
        }
        rho.apply_single(&gates::rx(0.3), num_qubits - 1);
        rho
    }

    fn damping_ops(gamma: f64) -> Vec<CMatrix> {
        let k0 = CMatrix::from_rows(&[
            vec![Complex64::ONE, Complex64::ZERO],
            vec![Complex64::ZERO, Complex64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            vec![Complex64::ZERO, Complex64::real(gamma.sqrt())],
            vec![Complex64::ZERO, Complex64::ZERO],
        ]);
        vec![k0, k1]
    }

    #[test]
    fn apply_matches_legacy_bitwise() {
        for num_qubits in 1..=3 {
            for target in 0..num_qubits {
                let ops = damping_ops(0.37);
                let kernel = CompiledKraus::compile(&ops, &[target], num_qubits).unwrap();
                let mut compiled = busy_state(num_qubits);
                let mut legacy = compiled.clone();
                kernel.apply(&mut compiled);
                legacy.try_apply_kraus(&ops, &[target]).unwrap();
                assert_eq!(bits(compiled.matrix()), bits(legacy.matrix()));
            }
        }
    }

    #[test]
    fn repeated_application_stays_bit_identical() {
        let ops = damping_ops(0.12);
        let kernel = CompiledKraus::compile(&ops, &[0], 2).unwrap();
        let mut compiled = busy_state(2);
        let mut legacy = compiled.clone();
        for _ in 0..50 {
            kernel.apply(&mut compiled);
            legacy.try_apply_kraus(&ops, &[0]).unwrap();
        }
        assert_eq!(bits(compiled.matrix()), bits(legacy.matrix()));
    }

    #[test]
    fn sample_matches_legacy_bitwise_and_rng_stream() {
        let ops = damping_ops(0.4);
        let kernel = CompiledKraus::compile(&ops, &[1], 2).unwrap();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut compiled = StateVector::new(2);
        compiled.apply_single(&gates::hadamard(), 0);
        compiled.apply_two(&gates::cnot(), 0, 1);
        let mut legacy = compiled.clone();
        for _ in 0..40 {
            let a = kernel.sample(&mut compiled, &mut rng_a).unwrap();
            let b = legacy.apply_kraus_sampled(&ops, &[1], &mut rng_b).unwrap();
            assert_eq!(a, b);
        }
        let a_bits: Vec<_> = compiled
            .amplitudes()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect();
        let b_bits: Vec<_> = legacy
            .amplitudes()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect();
        assert_eq!(a_bits, b_bits);
        // The streams must stay aligned afterwards too.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn sample_density_matches_legacy_bitwise() {
        let ops = damping_ops(0.25);
        let kernel = CompiledKraus::compile(&ops, &[0], 2).unwrap();
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = StdRng::seed_from_u64(23);
        let mut compiled = busy_state(2);
        let mut legacy = compiled.clone();
        for _ in 0..40 {
            let a = kernel.sample_density(&mut compiled, &mut rng_a).unwrap();
            let b = legacy.apply_kraus_sampled(&ops, &[0], &mut rng_b).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(bits(compiled.matrix()), bits(legacy.matrix()));
    }

    #[test]
    fn compile_validates_targets_once() {
        let ops = damping_ops(0.1);
        assert!(matches!(
            CompiledKraus::compile(&ops, &[5], 2),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        // Dimension is checked before targets, as in the legacy path, so
        // the duplicate check needs a correctly-sized two-qubit operator.
        assert!(matches!(
            CompiledKraus::compile(&[gates::cnot()], &[0, 0], 2),
            Err(QsimError::DuplicateQubit(0))
        ));
        assert!(matches!(
            CompiledKraus::compile(&ops, &[0, 1], 2),
            Err(QsimError::DimensionMismatch { .. })
        ));
        let kernel = CompiledKraus::compile(&ops, &[1], 3).unwrap();
        assert_eq!(kernel.num_qubits(), 3);
        assert_eq!(kernel.dim(), 8);
        assert_eq!(kernel.len(), 2);
        assert!(!kernel.is_empty());
    }

    #[test]
    #[should_panic(expected = "compiled for 2 qubit(s)")]
    fn register_mismatch_panics() {
        let kernel = CompiledKraus::compile(&damping_ops(0.1), &[0], 2).unwrap();
        let mut rho = DensityMatrix::new(3);
        kernel.apply(&mut rho);
    }

    #[test]
    fn unitary_special_case_round_trips() {
        // A single-operator kernel is an in-place unitary conjugation.
        let ops = vec![gates::hadamard()];
        let kernel = CompiledKraus::compile(&ops, &[0], 2).unwrap();
        let mut compiled = busy_state(2);
        let mut legacy = compiled.clone();
        kernel.apply(&mut compiled);
        legacy.try_apply_kraus(&ops, &[0]).unwrap();
        assert_eq!(bits(compiled.matrix()), bits(legacy.matrix()));
    }
}
