//! Error type shared by the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the quantum simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QsimError {
    /// A qubit index was outside the register.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// Number of qubits in the register.
        num_qubits: usize,
    },
    /// A gate matrix had the wrong dimension for the number of target qubits.
    DimensionMismatch {
        /// Expected dimension (2^k for k target qubits).
        expected: usize,
        /// Actual matrix dimension.
        actual: usize,
    },
    /// The same qubit was passed twice to a multi-qubit operation.
    DuplicateQubit(
        /// The duplicated qubit index.
        usize,
    ),
    /// An operation required a normalised state but the register was not normalised.
    NotNormalized,
    /// A state (or a sampled Kraus branch) had vanishing norm, so it cannot be
    /// renormalised without poisoning every amplitude with NaN or infinity.
    ZeroNorm,
    /// A supplied matrix was not unitary within tolerance.
    NotUnitary,
    /// A circuit referenced more qubits than the register provides.
    CircuitTooWide {
        /// Qubits used by the circuit.
        circuit_qubits: usize,
        /// Qubits available in the register.
        register_qubits: usize,
    },
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit index {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            QsimError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "gate dimension {actual} does not match expected {expected}"
                )
            }
            QsimError::DuplicateQubit(q) => write!(f, "duplicate qubit index {q}"),
            QsimError::NotNormalized => write!(f, "state is not normalised"),
            QsimError::ZeroNorm => {
                write!(f, "state has (near-)zero norm and cannot be renormalised")
            }
            QsimError::NotUnitary => write!(f, "matrix is not unitary"),
            QsimError::CircuitTooWide {
                circuit_qubits,
                register_qubits,
            } => write!(
                f,
                "circuit uses {circuit_qubits} qubits but the register only has {register_qubits}"
            ),
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = QsimError::QubitOutOfRange {
            qubit: 5,
            num_qubits: 2,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('2'));
        let e = QsimError::DimensionMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4'));
        let e = QsimError::DuplicateQubit(3);
        assert!(e.to_string().contains('3'));
        assert!(!QsimError::NotNormalized.to_string().is_empty());
        assert!(!QsimError::NotUnitary.to_string().is_empty());
        let e = QsimError::CircuitTooWide {
            circuit_qubits: 4,
            register_qubits: 2,
        };
        assert!(e.to_string().contains("circuit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}
