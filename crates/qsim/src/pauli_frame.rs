//! Pauli-frame (stabilizer) tracking of EPR pairs.
//!
//! Under Pauli noise and the protocol's Clifford data path, a `|Φ+⟩` pair
//! never leaves the set of four Bell states: every operation either relabels
//! the state (a Pauli on either half — the Klein four-group action of
//! [`BellState::after_pauli`]) or reads it out. A [`PauliFrame`] exploits
//! that closure by storing **only the Bell label** — two bits — instead of a
//! 4×4 complex density matrix, and replaces every per-pair kernel with
//! integer/bitmask updates plus (for the CHSH measurements) one analytic
//! cosine.
//!
//! This is the substrate behind the engine's `pauli-twirled` backend: noise
//! channels are first projected onto Pauli channels (see `noise::twirl`),
//! after which frame tracking is *exact* — the sampled Bell-label
//! distribution equals the Bell-diagonal of the twirled density matrix.
//!
//! ## Measurement conventions
//!
//! All samplers reproduce the distributions of the density-matrix kernels
//! on Bell-diagonal states:
//!
//! - equatorial correlators follow the conjugated-phase convention of
//!   [`crate::measurement`]: a pair in Bell state with flip bit `f` and
//!   phase bit `p` measured in bases `B(θ_a) ⊗ B(θ_b)` has
//!   `E = (−1)^p · cos(θ_a + (−1)^f · θ_b)` with uniform ±1 marginals;
//! - computational-basis outcomes are uniform with `b = a ⊕ f`;
//! - a Bell-state measurement on a definite Bell state is deterministic.
//!
//! A frame is **consumed** by measurement: the samplers return outcomes
//! without modelling the collapsed post-measurement product state (the
//! protocol never touches a pair again after measuring it).

use crate::bell::{BellOutcome, BellState};
use crate::measurement::MeasurementOutcome;
use crate::pauli::Pauli;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The Pauli frame of one EPR pair: its current Bell label.
///
/// # Examples
///
/// ```rust
/// use qsim::pauli_frame::PauliFrame;
/// use qsim::pauli::Pauli;
/// use qsim::bell::BellState;
///
/// let mut frame = PauliFrame::ideal();
/// frame.apply_pauli(Pauli::X);
/// assert_eq!(frame.state(), BellState::PsiPlus);
/// // Applying the same Pauli on the other half undoes the relabelling.
/// frame.apply_pauli(Pauli::X);
/// assert_eq!(frame.state(), BellState::PhiPlus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliFrame {
    state: BellState,
}

impl PauliFrame {
    /// A fresh `|Φ+⟩` frame — what the ideal source emits.
    pub fn ideal() -> Self {
        Self {
            state: BellState::PhiPlus,
        }
    }

    /// Wraps an arbitrary Bell label.
    pub fn new(state: BellState) -> Self {
        Self { state }
    }

    /// The Bell state this frame currently labels.
    pub fn state(self) -> BellState {
        self.state
    }

    /// The `(flip, phase)` bits of the current label.
    pub fn bits(self) -> (bool, bool) {
        self.state.encoding_pauli().to_bits()
    }

    /// Resets the frame to `|Φ+⟩` in place.
    pub fn reset(&mut self) {
        self.state = BellState::PhiPlus;
    }

    /// Applies a Pauli to **either half** of the pair.
    ///
    /// Up to global phase, `P ⊗ I` and `I ⊗ P` act identically on the Bell
    /// label (the transpose trick: `(I ⊗ P)|Φ+⟩ = (Pᵀ ⊗ I)|Φ+⟩`, and the
    /// alphabet `{I, σz, σx, iσy}` is real so `Pᵀ ~ P` up to sign), so a
    /// single XOR covers Alice-side encoding, Bob-side cover operations,
    /// and sampled channel noise on either qubit.
    pub fn apply_pauli(&mut self, pauli: Pauli) {
        self.state = self.state.after_pauli(pauli);
    }

    /// The equatorial CHSH correlator `E(θ_a, θ_b) = ⟨B(θ_a) ⊗ B(θ_b)⟩` of
    /// the current Bell state under the conjugated-phase convention of
    /// [`crate::measurement`].
    pub fn correlator(self, theta_a: f64, theta_b: f64) -> f64 {
        let (flip, phase) = self.bits();
        let sign = if phase { -1.0 } else { 1.0 };
        let b = if flip { -theta_b } else { theta_b };
        sign * (theta_a + b).cos()
    }

    /// Samples one CHSH record: Alice's outcome in `B(θ_a)`, then Bob's in
    /// `B(θ_b)` — the frame analogue of
    /// `DensityMatrix::measure_two_in_bases`. Exactly two `f64` draws.
    ///
    /// Alice's marginal is uniform (each half of a Bell state is maximally
    /// mixed); Bob then agrees with probability `(1 + E)/2`.
    pub fn measure_in_bases<R: Rng + ?Sized>(
        self,
        theta_a: f64,
        theta_b: f64,
        rng: &mut R,
    ) -> (MeasurementOutcome, MeasurementOutcome) {
        let bit_a = u8::from(rng.gen::<f64>() < 0.5);
        let p_same = (0.5 * (1.0 + self.correlator(theta_a, theta_b))).clamp(0.0, 1.0);
        let bit_b = if rng.gen::<f64>() < p_same {
            bit_a
        } else {
            bit_a ^ 1
        };
        (
            MeasurementOutcome::from_bit(bit_a),
            MeasurementOutcome::from_bit(bit_b),
        )
    }

    /// Samples a computational-basis readout of both halves. One `f64`
    /// draw: Alice's bit is uniform and Bob's is then fixed to
    /// `a ⊕ flip` (`Φ` states correlate, `Ψ` states anti-correlate).
    pub fn measure_computational<R: Rng + ?Sized>(self, rng: &mut R) -> (u8, u8) {
        let a = u8::from(rng.gen::<f64>() < 0.5);
        let (flip, _) = self.bits();
        (a, a ^ u8::from(flip))
    }

    /// The Bell-state measurement outcome of this frame. Deterministic — a
    /// BSM on a definite Bell state always identifies it — with the raw-bit
    /// convention of [`crate::bell::bell_measure`] (`bit_a` is the phase
    /// bit, `bit_b` the flip bit).
    pub fn bell_outcome(self) -> BellOutcome {
        let (flip, phase) = self.bits();
        BellOutcome {
            state: self.state,
            bit_a: u8::from(phase),
            bit_b: u8::from(flip),
        }
    }
}

impl Default for PauliFrame {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for PauliFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliFrame({})", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::bell_measure_density;
    use crate::density::DensityMatrix;
    use crate::measurement::MeasurementBasis;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn frame_tracks_the_klein_group_action_on_both_halves() {
        for start in BellState::ALL {
            for p in Pauli::ALL {
                let mut frame = PauliFrame::new(start);
                frame.apply_pauli(p);
                assert_eq!(frame.state(), start.after_pauli(p));
                // The same Pauli again (other half, same XOR) cancels.
                frame.apply_pauli(p);
                assert_eq!(frame.state(), start);
            }
        }
        let mut frame = PauliFrame::default();
        frame.apply_pauli(Pauli::IY);
        frame.reset();
        assert_eq!(frame.state(), BellState::PhiPlus);
        assert!(frame.to_string().contains("Φ+"));
    }

    #[test]
    fn correlators_match_the_density_matrix_expectation() {
        // E(θa, θb) from the analytic formula must match the exact
        // probability-weighted mean of the density-matrix sampler.
        let mut r = rng(3);
        let trials = 4000;
        for bell in BellState::ALL {
            for a in [MeasurementBasis::alice(0), MeasurementBasis::alice(2)] {
                for b in [MeasurementBasis::bob(1), MeasurementBasis::bob(2)] {
                    let frame = PauliFrame::new(bell);
                    let analytic = frame.correlator(a.angle(), b.angle());
                    let mut sum = 0.0;
                    for _ in 0..trials {
                        let mut rho = DensityMatrix::from_statevector(&bell.statevector());
                        let (oa, ob) = rho.measure_two_in_bases(0, a.angle(), 1, b.angle(), &mut r);
                        sum += oa.value() * ob.value();
                    }
                    let sampled = sum / trials as f64;
                    assert!(
                        (analytic - sampled).abs() < 0.06,
                        "{bell} {a:?}⊗{b:?}: analytic {analytic} vs density-sampled {sampled}"
                    );
                }
            }
        }
    }

    #[test]
    fn frame_sampler_agrees_with_its_own_correlator_and_has_uniform_marginals() {
        let mut r = rng(5);
        let trials = 6000;
        for bell in BellState::ALL {
            let frame = PauliFrame::new(bell);
            let (ta, tb) = (std::f64::consts::FRAC_PI_4, -std::f64::consts::FRAC_PI_4);
            let mut sum = 0.0;
            let mut alice_plus = 0usize;
            for _ in 0..trials {
                let (a, b) = frame.measure_in_bases(ta, tb, &mut r);
                sum += a.value() * b.value();
                alice_plus += usize::from(a.is_plus());
            }
            let e = sum / trials as f64;
            assert!(
                (e - frame.correlator(ta, tb)).abs() < 0.05,
                "{bell}: sampled {e} vs analytic {}",
                frame.correlator(ta, tb)
            );
            let marginal = alice_plus as f64 / trials as f64;
            assert!((marginal - 0.5).abs() < 0.05, "{bell}: marginal {marginal}");
        }
    }

    #[test]
    fn computational_readout_correlates_via_the_flip_bit() {
        let mut r = rng(7);
        for bell in BellState::ALL {
            let frame = PauliFrame::new(bell);
            let (flip, _) = frame.bits();
            let mut ones = 0usize;
            for _ in 0..2000 {
                let (a, b) = frame.measure_computational(&mut r);
                assert_eq!(b, a ^ u8::from(flip));
                ones += a as usize;
            }
            let frac = ones as f64 / 2000.0;
            assert!((frac - 0.5).abs() < 0.05, "{bell}: biased marginal {frac}");
        }
    }

    #[test]
    fn bell_outcome_matches_the_density_bsm_convention() {
        let mut r = rng(9);
        for bell in BellState::ALL {
            let outcome = PauliFrame::new(bell).bell_outcome();
            assert_eq!(outcome.state, bell);
            let mut rho = DensityMatrix::from_statevector(&bell.statevector());
            let reference = bell_measure_density(&mut rho, 0, 1, &mut r);
            assert_eq!(
                (outcome.bit_a, outcome.bit_b),
                (reference.bit_a, reference.bit_b)
            );
        }
    }
}
