//! # qsim — a from-scratch quantum simulator for the UA-DI-QSDC reproduction
//!
//! The paper emulates its protocol on IBM's `ibm_brisbane` superconducting hardware; this
//! crate is the substitute substrate: a statevector and density-matrix simulator with the full
//! gate set, measurement machinery (including arbitrary single-qubit bases and Bell-state
//! measurement), a small circuit IR, and shot sampling.
//!
//! ## Conventions
//!
//! - Qubit `0` is the **leftmost** qubit in a ket: for a 2-qubit register the basis state
//!   `|q0 q1⟩ = |10⟩` has index `0b10 = 2`.
//! - Gates are plain [`mathkit::CMatrix`] unitaries; the named constructors in [`gates`] cover
//!   every gate the paper needs.
//! - Measurement outcomes are `u8` bits (`0`/`1`); correlation helpers map them to `±1`.
//!
//! ## Example: prepare and measure an EPR pair
//!
//! ```rust
//! use qsim::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut state = StateVector::new(2);
//! state.apply_single(&gates::hadamard(), 0);
//! state.apply_two(&gates::cnot(), 0, 1);
//! // |Φ+⟩: both outcomes correlated.
//! let (a, b) = (state.measure(0, &mut rng), state.measure(1, &mut rng));
//! assert_eq!(a, b);
//! ```
//!
//! ## Kernels
//!
//! Operator application is in-place and targeted: [`kernel::CompiledKraus`] precomputes the
//! strided index tables for a fixed `(operators, targets, num_qubits)` placement and updates
//! only the targeted qubits' strides — the embedded `2ⁿ×2ⁿ` operator is never materialised,
//! 2-qubit registers take fixed-dim fast paths, and scratch lives in thread-local buffers so
//! steady-state application is allocation-free. Unitary application and measurement collapse
//! on [`DensityMatrix`] use the same machinery, and `measure_two_in_bases` fuses a pair
//! measurement into one pass. Most users reach this through `noise::KrausChannel::compile`;
//! the architecture and its determinism contract (compiled application is bit-identical to
//! the legacy embed path) are documented in `docs/kernels.md` at the repo root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bell;
pub mod chsh;
pub mod circuit;
pub mod counts;
pub mod density;
pub mod error;
pub mod gates;
pub mod kernel;
pub mod measurement;
pub mod pauli;
pub mod pauli_frame;
pub mod statevector;

pub use bell::{BellOutcome, BellState};
pub use circuit::{Circuit, CircuitBuilder, Operation};
pub use counts::Counts;
pub use density::DensityMatrix;
pub use error::QsimError;
pub use kernel::CompiledKraus;
pub use pauli::Pauli;
pub use pauli_frame::PauliFrame;
pub use statevector::StateVector;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::bell::{BellOutcome, BellState};
    pub use crate::chsh::{chsh_value, correlator, MeasurementRecord};
    pub use crate::circuit::{Circuit, CircuitBuilder, Operation};
    pub use crate::counts::Counts;
    pub use crate::density::DensityMatrix;
    pub use crate::error::QsimError;
    pub use crate::gates;
    pub use crate::measurement::{MeasurementBasis, MeasurementOutcome};
    pub use crate::pauli::Pauli;
    pub use crate::pauli_frame::PauliFrame;
    pub use crate::statevector::StateVector;
}
