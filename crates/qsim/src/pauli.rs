//! The Pauli encoding alphabet.
//!
//! The UA-DI-QSDC protocol encodes two classical bits per qubit by applying one of the four
//! unitaries `{I, σz, σx, iσy}`; the same alphabet doubles as the *cover operations* Alice
//! applies to the DA qubits so that Bob's identity stays reusable. [`Pauli`] names the four
//! operators and knows the paper's bit-pair mapping.

use crate::gates;
use mathkit::matrix::CMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four encoding operators `{I, σz, σx, iσy}` used by the protocol.
///
/// The paper's encoding rule (Section II, step 3):
///
/// | bits | operator |
/// |------|----------|
/// | `00` | `I`      |
/// | `01` | `σz`     |
/// | `10` | `σx`     |
/// | `11` | `iσy`    |
///
/// # Examples
///
/// ```rust
/// use qsim::pauli::Pauli;
///
/// assert_eq!(Pauli::from_bits(true, false), Pauli::X);
/// assert_eq!(Pauli::Z.to_bits(), (false, true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Pauli {
    /// Identity — encodes `00`.
    #[default]
    I,
    /// Pauli-Z — encodes `01`.
    Z,
    /// Pauli-X — encodes `10`.
    X,
    /// `iσy` — encodes `11`.
    IY,
}

impl Pauli {
    /// All four operators in bit-pair order `00, 01, 10, 11`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::Z, Pauli::X, Pauli::IY];

    /// Maps a bit pair `(b1, b0)` — most-significant bit first — to its encoding operator.
    ///
    /// ```rust
    /// # use qsim::pauli::Pauli;
    /// assert_eq!(Pauli::from_bits(false, false), Pauli::I);
    /// assert_eq!(Pauli::from_bits(false, true), Pauli::Z);
    /// assert_eq!(Pauli::from_bits(true, false), Pauli::X);
    /// assert_eq!(Pauli::from_bits(true, true), Pauli::IY);
    /// ```
    pub fn from_bits(msb: bool, lsb: bool) -> Self {
        match (msb, lsb) {
            (false, false) => Pauli::I,
            (false, true) => Pauli::Z,
            (true, false) => Pauli::X,
            (true, true) => Pauli::IY,
        }
    }

    /// Maps a 2-bit integer (`0..=3`) to its encoding operator.
    ///
    /// # Panics
    ///
    /// Panics if `value > 3`.
    pub fn from_index(value: u8) -> Self {
        match value {
            0 => Pauli::I,
            1 => Pauli::Z,
            2 => Pauli::X,
            3 => Pauli::IY,
            _ => panic!("Pauli index {value} out of range (0..=3)"),
        }
    }

    /// Returns the `(msb, lsb)` bit pair this operator encodes.
    pub fn to_bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::Z => (false, true),
            Pauli::X => (true, false),
            Pauli::IY => (true, true),
        }
    }

    /// Returns the 2-bit integer (`0..=3`) this operator encodes.
    pub fn to_index(self) -> u8 {
        match self {
            Pauli::I => 0,
            Pauli::Z => 1,
            Pauli::X => 2,
            Pauli::IY => 3,
        }
    }

    /// The 2×2 unitary matrix of this operator.
    pub fn matrix(self) -> CMatrix {
        match self {
            Pauli::I => gates::identity(),
            Pauli::Z => gates::pauli_z(),
            Pauli::X => gates::pauli_x(),
            Pauli::IY => gates::i_pauli_y(),
        }
    }

    /// Applies this operator to one qubit of a density matrix: `ρ → P ρ P†`.
    ///
    /// Equivalent to `rho.apply_single(&self.matrix(), qubit)`, but Pauli
    /// conjugation is a pure permutation-with-signs of the entries, so the
    /// encoding hot path (one Pauli per transmitted qubit) runs without a
    /// single multiplication or allocation.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn apply_to_density(self, rho: &mut crate::density::DensityMatrix, qubit: usize) {
        assert!(qubit < rho.num_qubits(), "qubit out of range");
        let num_qubits = rho.num_qubits();
        let dim = 1usize << num_qubits;
        let mask = 1usize << (num_qubits - 1 - qubit);
        let m = rho.matrix_mut().as_mut_slice();
        match self {
            Pauli::I => {}
            // ZρZ: negate entries whose row/column target bits differ.
            Pauli::Z => {
                for i in 0..dim {
                    for j in 0..dim {
                        if ((i ^ j) & mask) != 0 {
                            m[i * dim + j] = -m[i * dim + j];
                        }
                    }
                }
            }
            // XρX: exchange entries across the target-bit flip.
            Pauli::X => {
                for i in 0..dim {
                    if i & mask != 0 {
                        continue;
                    }
                    let ix = i ^ mask;
                    for j in 0..dim {
                        m.swap(i * dim + j, ix * dim + (j ^ mask));
                    }
                }
            }
            // (iY)ρ(iY)†: the X exchange with a sign wherever the row and
            // column target bits of the destination differ.
            Pauli::IY => {
                for i in 0..dim {
                    if i & mask != 0 {
                        continue;
                    }
                    let ix = i ^ mask;
                    for j in 0..dim {
                        let a = i * dim + j;
                        let b = ix * dim + (j ^ mask);
                        let moved = m[b];
                        if j & mask != 0 {
                            m[b] = -m[a];
                            m[a] = -moved;
                        } else {
                            m[b] = m[a];
                            m[a] = moved;
                        }
                    }
                }
            }
        }
    }

    /// Samples a uniformly random operator — how Eve behaves when she does not know the
    /// identity string, and how Alice picks cover operations.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_index(rng.gen_range(0..4u8))
    }

    /// Group composition: the operator equivalent to applying `self` **after** `other`,
    /// ignoring global phase.
    ///
    /// The four operators form the Klein four-group modulo phase, which is what makes the
    /// cover-operation bookkeeping in the authentication step work: Alice can undo her cover
    /// operation on paper by composing indices.
    ///
    /// ```rust
    /// # use qsim::pauli::Pauli;
    /// assert_eq!(Pauli::X.compose(Pauli::Z), Pauli::IY);
    /// assert_eq!(Pauli::Z.compose(Pauli::Z), Pauli::I);
    /// ```
    pub fn compose(self, other: Pauli) -> Pauli {
        // Using the bit-pair representation (x, z) where operator = X^x Z^z up to phase:
        // I=(0,0), Z=(0,1), X=(1,0), iY=(1,1); composition is XOR of the pairs.
        let (ax, az) = self.to_bits();
        let (bx, bz) = other.to_bits();
        Pauli::from_bits(ax ^ bx, az ^ bz)
    }

    /// Human-readable operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Pauli::I => "I",
            Pauli::Z => "σz",
            Pauli::X => "σx",
            Pauli::IY => "iσy",
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bit_round_trip() {
        for p in Pauli::ALL {
            let (msb, lsb) = p.to_bits();
            assert_eq!(Pauli::from_bits(msb, lsb), p);
            assert_eq!(Pauli::from_index(p.to_index()), p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large_values() {
        let _ = Pauli::from_index(4);
    }

    #[test]
    fn matrices_are_unitary_and_match_gate_library() {
        for p in Pauli::ALL {
            assert!(p.matrix().is_unitary(1e-12));
        }
        assert!(Pauli::X.matrix().approx_eq(&gates::pauli_x(), 1e-12));
        assert!(Pauli::IY.matrix().approx_eq(&gates::i_pauli_y(), 1e-12));
    }

    #[test]
    fn composition_is_klein_four_group() {
        // Every element is its own inverse.
        for p in Pauli::ALL {
            assert_eq!(p.compose(p), Pauli::I);
        }
        // Composition is commutative (mod phase).
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                assert_eq!(a.compose(b), b.compose(a));
            }
        }
        // Closure with the expected values.
        assert_eq!(Pauli::X.compose(Pauli::Z), Pauli::IY);
        assert_eq!(Pauli::X.compose(Pauli::IY), Pauli::Z);
        assert_eq!(Pauli::Z.compose(Pauli::IY), Pauli::X);
    }

    #[test]
    fn composition_matches_matrix_product_up_to_phase() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let composed = a.compose(b).matrix();
                let product = a.matrix().matmul(&b.matrix());
                // The product must equal the composed operator up to a global phase factor.
                // Find the first non-zero entry and compare ratios.
                let mut phase = None;
                'outer: for i in 0..2 {
                    for j in 0..2 {
                        if composed[(i, j)].norm() > 1e-9 {
                            phase = Some(product[(i, j)] / composed[(i, j)]);
                            break 'outer;
                        }
                    }
                }
                let phase = phase.expect("composed Pauli has a non-zero entry");
                assert!(
                    (phase.norm() - 1.0).abs() < 1e-9,
                    "phase must be unimodular"
                );
                assert!(product.approx_eq(&composed.scale(phase), 1e-9));
            }
        }
    }

    #[test]
    fn random_sampling_covers_all_operators() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Pauli::random(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Pauli::IY.to_string(), "iσy");
        assert_eq!(Pauli::default(), Pauli::I);
    }
}
