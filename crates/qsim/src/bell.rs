//! Bell states and Bell-state measurement (BSM).
//!
//! The protocol's whole data path is Bell-state algebra: the source distributes `|Φ+⟩` pairs,
//! Alice's Pauli encoding maps `|Φ+⟩` to one of the four Bell states, and Bob decodes with a
//! Bell-state measurement. This module names the four states, builds them, and implements the
//! BSM as the standard CNOT + Hadamard disentangling circuit followed by computational-basis
//! readout.

use crate::gates;
use crate::pauli::Pauli;
use crate::statevector::StateVector;
use mathkit::complex::Complex64;
use mathkit::vector::CVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// One of the four maximally entangled two-qubit Bell states.
///
/// # Examples
///
/// ```rust
/// use qsim::bell::BellState;
/// use qsim::pauli::Pauli;
///
/// // Applying σx to the first qubit of |Φ+⟩ yields |Ψ+⟩.
/// assert_eq!(BellState::PhiPlus.after_pauli(Pauli::X), BellState::PsiPlus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BellState {
    /// `|Φ+⟩ = (|00⟩ + |11⟩)/√2` — the state the EPR source emits.
    PhiPlus,
    /// `|Φ−⟩ = (|00⟩ − |11⟩)/√2`.
    PhiMinus,
    /// `|Ψ+⟩ = (|01⟩ + |10⟩)/√2`.
    PsiPlus,
    /// `|Ψ−⟩ = (|01⟩ − |10⟩)/√2`.
    PsiMinus,
}

impl BellState {
    /// All four Bell states in the order `Φ+, Φ−, Ψ+, Ψ−`.
    pub const ALL: [BellState; 4] = [
        BellState::PhiPlus,
        BellState::PhiMinus,
        BellState::PsiPlus,
        BellState::PsiMinus,
    ];

    /// The two-qubit statevector of this Bell state.
    pub fn statevector(self) -> StateVector {
        let s = FRAC_1_SQRT_2;
        let amps = match self {
            BellState::PhiPlus => vec![
                Complex64::real(s),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::real(s),
            ],
            BellState::PhiMinus => vec![
                Complex64::real(s),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::real(-s),
            ],
            BellState::PsiPlus => vec![
                Complex64::ZERO,
                Complex64::real(s),
                Complex64::real(s),
                Complex64::ZERO,
            ],
            BellState::PsiMinus => vec![
                Complex64::ZERO,
                Complex64::real(s),
                Complex64::real(-s),
                Complex64::ZERO,
            ],
        };
        StateVector::from_amplitudes(CVector::new(amps))
            .expect("Bell state amplitudes are normalised by construction")
    }

    /// The Bell state obtained by applying `pauli` to the **first** qubit of `self`,
    /// ignoring global phase.
    ///
    /// This is the encoding map of the protocol: starting from `|Φ+⟩`, the operators
    /// `I, σz, σx, iσy` produce `Φ+, Φ−, Ψ+, Ψ−` respectively.
    pub fn after_pauli(self, pauli: Pauli) -> BellState {
        // Represent Bell states by (flip, phase) bits: Φ+=(0,0), Φ−=(0,1), Ψ+=(1,0), Ψ−=(1,1).
        let (flip, phase_bit) = self.flip_phase_bits();
        let (px, pz) = pauli.to_bits();
        // σx on the first qubit toggles the flip bit; σz toggles the phase bit; a phase bit
        // toggling also occurs when σz acts on the flipped component (global-phase-free rule
        // for the first qubit is a straight XOR).
        BellState::from_flip_phase_bits(flip ^ px, phase_bit ^ pz)
    }

    /// The Pauli operator that maps `|Φ+⟩` to this Bell state (the decoding map of the
    /// protocol: Bob observes this Bell state ⇒ Alice applied this operator ⇒ these 2 bits).
    pub fn encoding_pauli(self) -> Pauli {
        let (flip, phase_bit) = self.flip_phase_bits();
        Pauli::from_bits(flip, phase_bit)
    }

    /// The 2-bit message this Bell state decodes to under the paper's encoding rule.
    pub fn message_bits(self) -> (bool, bool) {
        self.encoding_pauli().to_bits()
    }

    /// The bitstring label (`"00"`, `"01"`, `"10"`, `"11"`) this Bell state decodes to.
    pub fn message_label(self) -> &'static str {
        match self.encoding_pauli() {
            Pauli::I => "00",
            Pauli::Z => "01",
            Pauli::X => "10",
            Pauli::IY => "11",
        }
    }

    fn flip_phase_bits(self) -> (bool, bool) {
        match self {
            BellState::PhiPlus => (false, false),
            BellState::PhiMinus => (false, true),
            BellState::PsiPlus => (true, false),
            BellState::PsiMinus => (true, true),
        }
    }

    fn from_flip_phase_bits(flip: bool, phase: bool) -> Self {
        match (flip, phase) {
            (false, false) => BellState::PhiPlus,
            (false, true) => BellState::PhiMinus,
            (true, false) => BellState::PsiPlus,
            (true, true) => BellState::PsiMinus,
        }
    }

    /// The position of this state in [`BellState::ALL`].
    pub fn to_index(self) -> usize {
        let (flip, phase) = self.flip_phase_bits();
        (usize::from(flip) << 1) | usize::from(phase)
    }

    /// Inverse of [`BellState::to_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < 4, "Bell-state index {index} out of range (0..=3)");
        Self::from_flip_phase_bits(index & 0b10 != 0, index & 0b01 != 0)
    }

    /// The (pure) density matrix of this Bell state, built once per process.
    ///
    /// This is the materialisation target when a Pauli-frame-tracked pair
    /// has to re-enter the exact density substrate (e.g. when an active
    /// eavesdropper tap needs the full state): cloning from the static
    /// reference into an existing buffer is allocation-free.
    pub fn density_ref(self) -> &'static crate::density::DensityMatrix {
        static DENSITIES: std::sync::OnceLock<[crate::density::DensityMatrix; 4]> =
            std::sync::OnceLock::new();
        &DENSITIES.get_or_init(|| {
            BellState::ALL
                .map(|b| crate::density::DensityMatrix::from_statevector(&b.statevector()))
        })[self.to_index()]
    }

    /// Conventional ket notation.
    pub fn symbol(self) -> &'static str {
        match self {
            BellState::PhiPlus => "|Φ+⟩",
            BellState::PhiMinus => "|Φ−⟩",
            BellState::PsiPlus => "|Ψ+⟩",
            BellState::PsiMinus => "|Ψ−⟩",
        }
    }
}

impl fmt::Display for BellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The result of a Bell-state measurement: the identified Bell state plus the raw bits the
/// disentangling circuit produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BellOutcome {
    /// The Bell state the measurement projected onto.
    pub state: BellState,
    /// Raw bit measured on the first (control) qubit after the disentangling circuit.
    pub bit_a: u8,
    /// Raw bit measured on the second (target) qubit after the disentangling circuit.
    pub bit_b: u8,
}

impl BellOutcome {
    /// The 2-bit message label this outcome decodes to.
    pub fn message_label(&self) -> &'static str {
        self.state.message_label()
    }
}

impl fmt::Display for BellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (bits {}{})", self.state, self.bit_a, self.bit_b)
    }
}

/// Prepares a fresh `|Φ+⟩` pair on qubits `(a, b)` of `state` (which must currently hold
/// `|0⟩` on both qubits).
pub fn prepare_phi_plus(state: &mut StateVector, a: usize, b: usize) {
    state.apply_single(&gates::hadamard(), a);
    state.apply_two(&gates::cnot(), a, b);
}

// The disentangling circuit's gates, built once per process: Bell-state
// measurements run on every decoded qubit of every trial.
fn disentangle_cnot() -> &'static mathkit::matrix::CMatrix {
    static CNOT: std::sync::OnceLock<mathkit::matrix::CMatrix> = std::sync::OnceLock::new();
    CNOT.get_or_init(gates::cnot)
}

fn disentangle_hadamard() -> &'static mathkit::matrix::CMatrix {
    static HADAMARD: std::sync::OnceLock<mathkit::matrix::CMatrix> = std::sync::OnceLock::new();
    HADAMARD.get_or_init(gates::hadamard)
}

/// Performs a Bell-state measurement on qubits `(a, b)` of `state`, collapsing them.
///
/// The implementation is the textbook disentangling circuit: CNOT with control `a`, target
/// `b`, then Hadamard on `a`, then a computational-basis measurement of both qubits. The raw
/// bits `(m_a, m_b)` identify the Bell state as
/// `00 → Φ+`, `10 → Φ−`, `01 → Ψ+`, `11 → Ψ−`.
pub fn bell_measure<R: Rng + ?Sized>(
    state: &mut StateVector,
    a: usize,
    b: usize,
    rng: &mut R,
) -> BellOutcome {
    state.apply_two(disentangle_cnot(), a, b);
    state.apply_single(disentangle_hadamard(), a);
    let bit_a = state.measure(a, rng);
    let bit_b = state.measure(b, rng);
    let bell = match (bit_a, bit_b) {
        (0, 0) => BellState::PhiPlus,
        (1, 0) => BellState::PhiMinus,
        (0, 1) => BellState::PsiPlus,
        (1, 1) => BellState::PsiMinus,
        _ => unreachable!("measurement bits are always 0 or 1"),
    };
    BellOutcome {
        state: bell,
        bit_a,
        bit_b,
    }
}

/// Performs a Bell-state measurement on qubits `(a, b)` of a density matrix, collapsing them.
///
/// Identical convention to [`bell_measure`], but for the noisy (mixed-state) back-end.
pub fn bell_measure_density<R: Rng + ?Sized>(
    rho: &mut crate::density::DensityMatrix,
    a: usize,
    b: usize,
    rng: &mut R,
) -> BellOutcome {
    let (bit_a, bit_b) = if rho.num_qubits() == 2 {
        bell_measure_density_pair(rho, a, b, rng)
    } else {
        rho.apply_two(disentangle_cnot(), a, b);
        rho.apply_single(disentangle_hadamard(), a);
        let bit_a = rho.measure(a, rng);
        let bit_b = rho.measure(b, rng);
        (bit_a, bit_b)
    };
    let bell = match (bit_a, bit_b) {
        (0, 0) => BellState::PhiPlus,
        (1, 0) => BellState::PhiMinus,
        (0, 1) => BellState::PsiPlus,
        (1, 1) => BellState::PsiMinus,
        _ => unreachable!("measurement bits are always 0 or 1"),
    };
    BellOutcome {
        state: bell,
        bit_a,
        bit_b,
    }
}

/// Two-qubit fast path for [`bell_measure_density`]: the four outcome
/// probabilities are the Bell-basis quadratic forms `⟨B|ρ|B⟩`, read
/// directly off four matrix entries each, and the post-measurement state —
/// the computational basis state `|m_a m_b⟩` the disentangling circuit
/// leaves behind — is written in place. Same two RNG draws (Alice's bit,
/// then Bob's conditional bit) as the circuit path.
fn bell_measure_density_pair<R: Rng + ?Sized>(
    rho: &mut crate::density::DensityMatrix,
    a: usize,
    b: usize,
    rng: &mut R,
) -> (u8, u8) {
    assert!(a < 2 && b < 2 && a != b, "invalid Bell-measurement qubits");
    let stride_a = 1usize << (1 - a);
    let stride_b = 1usize << (1 - b);
    let idx = |x: usize, y: usize| x * stride_a + y * stride_b;
    let m = rho.matrix_mut().as_mut_slice();
    // ⟨B|ρ|B⟩ for B = (|u⟩ ± |v⟩)/√2: ½(ρ_uu + ρ_vv) ± Re ρ_uv.
    let quad = |m: &[Complex64], u: usize, v: usize| -> (f64, f64) {
        let base = 0.5 * (m[u * 4 + u].re + m[v * 4 + v].re);
        let cross = m[u * 4 + v].re;
        (base + cross, base - cross)
    };
    // Outcome (m_a, m_b) projects onto 00 → Φ+, 10 → Φ−, 01 → Ψ+, 11 → Ψ−.
    let (d00, d10) = quad(m, idx(0, 0), idx(1, 1));
    let (d01, d11) = quad(m, idx(0, 1), idx(1, 0));
    let p_a1 = (d10 + d11).clamp(0.0, 1.0);
    let bit_a = u8::from(rng.gen::<f64>() < p_a1);
    let (da0, da1) = if bit_a == 1 { (d10, d11) } else { (d00, d01) };
    let p_a = da0 + da1;
    assert!(
        p_a > 1e-12,
        "collapse onto a zero-probability outcome (qubit {a}, outcome {bit_a})"
    );
    let p_b1 = (da1 / p_a).clamp(0.0, 1.0);
    let bit_b = u8::from(rng.gen::<f64>() < p_b1);
    let p_b = if bit_b == 1 { p_b1 } else { 1.0 - p_b1 };
    assert!(
        p_b > 1e-12,
        "collapse onto a zero-probability outcome (qubit {b}, outcome {bit_b})"
    );
    let winner = idx(bit_a as usize, bit_b as usize);
    m.fill(Complex64::ZERO);
    m[winner * 4 + winner] = Complex64::ONE;
    (bit_a, bit_b)
}

/// The Bell-diagonal of a two-qubit density matrix: the four fidelities
/// `⟨B|ρ|B⟩` in [`BellState::ALL`] order, each read off four matrix entries
/// via the same quadratic forms as the BSM fast path. They sum to `Tr ρ`.
///
/// This is the "re-twirl" primitive of the Pauli-frame substrate: projecting
/// a state back onto the Bell-diagonal channel after a non-Pauli operation
/// (an eavesdropper's measurement, say) means sampling a Bell label from
/// exactly this distribution.
///
/// # Panics
///
/// Panics if `rho` is not a two-qubit state.
pub fn bell_diagonal_probabilities(rho: &crate::density::DensityMatrix) -> [f64; 4] {
    assert_eq!(
        rho.num_qubits(),
        2,
        "the Bell diagonal is defined for two-qubit states"
    );
    let m = rho.matrix().as_slice();
    let quad = |u: usize, v: usize| -> (f64, f64) {
        let base = 0.5 * (m[u * 4 + u].re + m[v * 4 + v].re);
        let cross = m[u * 4 + v].re;
        (base + cross, base - cross)
    };
    let (phi_plus, phi_minus) = quad(0b00, 0b11);
    let (psi_plus, psi_minus) = quad(0b01, 0b10);
    [phi_plus, phi_minus, psi_plus, psi_minus]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn statevectors_are_normalised_and_orthogonal() {
        for (i, a) in BellState::ALL.iter().enumerate() {
            let va = a.statevector();
            assert!(va.is_normalized(1e-12));
            for (j, b) in BellState::ALL.iter().enumerate() {
                let f = va.fidelity(&b.statevector());
                if i == j {
                    assert!((f - 1.0).abs() < 1e-12);
                } else {
                    assert!(f < 1e-12, "{a} and {b} must be orthogonal");
                }
            }
        }
    }

    #[test]
    fn prepare_phi_plus_matches_reference() {
        let mut s = StateVector::new(2);
        prepare_phi_plus(&mut s, 0, 1);
        assert!((s.fidelity(&BellState::PhiPlus.statevector()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_encoding_produces_the_expected_bell_states() {
        // Verify the algebraic rule against actual statevector simulation.
        for pauli in Pauli::ALL {
            let mut s = StateVector::new(2);
            prepare_phi_plus(&mut s, 0, 1);
            s.apply_single(&pauli.matrix(), 0);
            let expected = BellState::PhiPlus.after_pauli(pauli);
            let fidelity = s.fidelity(&expected.statevector());
            assert!(
                (fidelity - 1.0).abs() < 1e-12,
                "{pauli} on Φ+ should give {expected}, fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn encoding_and_decoding_are_inverse() {
        for pauli in Pauli::ALL {
            let encoded = BellState::PhiPlus.after_pauli(pauli);
            assert_eq!(encoded.encoding_pauli(), pauli);
            assert_eq!(encoded.message_bits(), pauli.to_bits());
        }
        assert_eq!(BellState::PhiPlus.message_label(), "00");
        assert_eq!(BellState::PhiMinus.message_label(), "01");
        assert_eq!(BellState::PsiPlus.message_label(), "10");
        assert_eq!(BellState::PsiMinus.message_label(), "11");
    }

    #[test]
    fn after_pauli_acts_transitively_on_all_states() {
        // The Klein four-group action must be compatible with composition.
        for start in BellState::ALL {
            for p in Pauli::ALL {
                for q in Pauli::ALL {
                    let step = start.after_pauli(p).after_pauli(q);
                    let combined = start.after_pauli(p.compose(q));
                    assert_eq!(step, combined);
                }
            }
        }
    }

    #[test]
    fn bell_measurement_identifies_each_state() {
        let mut r = rng();
        for bell in BellState::ALL {
            for _ in 0..20 {
                let mut s = bell.statevector();
                let outcome = bell_measure(&mut s, 0, 1, &mut r);
                assert_eq!(
                    outcome.state, bell,
                    "BSM must identify {bell} deterministically"
                );
            }
        }
    }

    #[test]
    fn bell_measurement_decodes_pauli_encoded_messages() {
        let mut r = rng();
        for pauli in Pauli::ALL {
            let mut s = StateVector::new(2);
            prepare_phi_plus(&mut s, 0, 1);
            s.apply_single(&pauli.matrix(), 0);
            let outcome = bell_measure(&mut s, 0, 1, &mut r);
            assert_eq!(outcome.state.encoding_pauli(), pauli);
        }
    }

    #[test]
    fn bell_measurement_on_density_matrix_matches() {
        let mut r = rng();
        for bell in BellState::ALL {
            let mut rho = DensityMatrix::from_statevector(&bell.statevector());
            let outcome = bell_measure_density(&mut rho, 0, 1, &mut r);
            assert_eq!(outcome.state, bell);
        }
    }

    #[test]
    fn bell_measurement_in_larger_register() {
        // Qubits 1 and 3 of a 4-qubit register hold the pair.
        let mut r = rng();
        let mut s = StateVector::new(4);
        prepare_phi_plus(&mut s, 1, 3);
        s.apply_single(&Pauli::X.matrix(), 1);
        let outcome = bell_measure(&mut s, 1, 3, &mut r);
        assert_eq!(outcome.state, BellState::PsiPlus);
    }

    #[test]
    fn index_round_trips_and_density_refs_are_the_pure_states() {
        for (i, bell) in BellState::ALL.into_iter().enumerate() {
            assert_eq!(bell.to_index(), i);
            assert_eq!(BellState::from_index(i), bell);
            let rho = bell.density_ref();
            assert!((rho.fidelity_with_pure(&bell.statevector()) - 1.0).abs() < 1e-12);
            assert!((rho.purity() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = BellState::from_index(4);
    }

    #[test]
    fn bell_diagonal_of_pure_states_and_mixtures() {
        for (i, bell) in BellState::ALL.into_iter().enumerate() {
            let probs =
                bell_diagonal_probabilities(&DensityMatrix::from_statevector(&bell.statevector()));
            for (j, p) in probs.into_iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((p - expected).abs() < 1e-12, "{bell}: p[{j}] = {p}");
            }
        }
        // The maximally mixed state is the uniform Bell mixture.
        let probs = bell_diagonal_probabilities(&DensityMatrix::maximally_mixed(2));
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
        // A separable |00⟩⟨00| splits evenly across the two Φ states.
        let probs = bell_diagonal_probabilities(&DensityMatrix::new(2));
        assert!((probs[0] - 0.5).abs() < 1e-12 && (probs[1] - 0.5).abs() < 1e-12);
        assert!(probs[2].abs() < 1e-12 && probs[3].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two-qubit")]
    fn bell_diagonal_rejects_wrong_register_size() {
        let _ = bell_diagonal_probabilities(&DensityMatrix::new(3));
    }

    #[test]
    fn outcome_display_and_label() {
        let o = BellOutcome {
            state: BellState::PsiMinus,
            bit_a: 1,
            bit_b: 1,
        };
        assert_eq!(o.message_label(), "11");
        assert!(o.to_string().contains("Ψ−"));
        assert_eq!(BellState::PhiPlus.to_string(), "|Φ+⟩");
    }
}
