//! The rule catalog: each rule statically enforces one reproducibility
//! invariant the workspace otherwise only checks dynamically.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall-clock` | replay depends only on (seed, fingerprint, trial index) — no clocks, env reads, or OS entropy in library code |
//! | `unordered-iter` | fingerprints, serialized artifacts and merge folds never observe `HashMap`/`HashSet` order |
//! | `unsafe-audit` | every crate root carries `#![forbid(unsafe_code)]`; `unsafe` appears only in the allowlisted allocator shim |
//! | `hot-path-alloc` | the designated kernel modules stay allocation-free (the budget `alloc_regression.rs` asserts at run time) |
//! | `internal-deprecated` | workspace-`#[deprecated]` items are not called from live code outside their defining module |
//! | `wire-fixture` | every `pub` serde type in the engine wire modules is pinned by a golden fixture |
//! | `env-keys` | `UA_DI_QSDC_*` names are spelled once, in `protocol::env_keys` |
//! | `waiver-hygiene` | every waiver names a known rule and carries a reason |
//!
//! Findings are waivable inline (`// detlint: allow(<rule>): <reason>`)
//! except `waiver-hygiene` itself — a waiver cannot excuse its own silence.

use crate::config::Config;
use crate::diag::{Diagnostic, WaivedDiagnostic};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// `wall-clock`: no `SystemTime::now` / `Instant::now` / `std::env::var` /
/// OS entropy outside bins, tests and waived sites.
pub const WALL_CLOCK: &str = "wall-clock";
/// `unordered-iter`: no `HashMap`/`HashSet` in crates feeding fingerprints,
/// serialization or merge folds.
pub const UNORDERED_ITER: &str = "unordered-iter";
/// `unsafe-audit`: crate roots forbid unsafe; `unsafe` only in the allowlist.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// `hot-path-alloc`: no allocating calls in the kernel modules.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// `internal-deprecated`: no live calls to workspace-deprecated items.
pub const INTERNAL_DEPRECATED: &str = "internal-deprecated";
/// `wire-fixture`: pub serde wire types must be golden-fixture covered.
pub const WIRE_FIXTURE: &str = "wire-fixture";
/// `env-keys`: workspace env-var names live in `protocol::env_keys` only.
pub const ENV_KEYS: &str = "env-keys";
/// `waiver-hygiene`: waivers carry reasons and name real rules.
pub const WAIVER_HYGIENE: &str = "waiver-hygiene";

/// Every rule identifier, in catalog order.
pub const ALL_RULES: &[&str] = &[
    WALL_CLOCK,
    UNORDERED_ITER,
    UNSAFE_AUDIT,
    HOT_PATH_ALLOC,
    INTERNAL_DEPRECATED,
    WIRE_FIXTURE,
    ENV_KEYS,
    WAIVER_HYGIENE,
];

/// A token-sequence pattern element.
enum Pat {
    /// Exactly this identifier.
    Id(&'static str),
    /// Exactly this punctuation character.
    P(char),
}

fn seq_at(tokens: &[Token], i: usize, pattern: &[Pat]) -> bool {
    pattern.iter().enumerate().all(|(k, pat)| {
        tokens.get(i + k).is_some_and(|t| match pat {
            Pat::Id(word) => t.is_ident(word),
            Pat::P(ch) => t.is_punct(*ch),
        })
    })
}

/// Runs every rule over the parsed files and splits the findings into
/// unwaived diagnostics and reasoned waivers, each sorted.
pub fn run_all(
    config: &Config,
    files: &[SourceFile],
    fixture_names: &[String],
) -> (Vec<Diagnostic>, Vec<WaivedDiagnostic>) {
    let mut findings = Vec::new();
    for file in files {
        wall_clock(config, file, &mut findings);
        unordered_iter(config, file, &mut findings);
        unsafe_audit(config, file, &mut findings);
        hot_path_alloc(config, file, &mut findings);
        env_keys(config, file, &mut findings);
    }
    internal_deprecated(files, &mut findings);
    wire_fixture(config, files, fixture_names, &mut findings);

    let mut diagnostics = Vec::new();
    let mut waived = Vec::new();
    for finding in findings {
        let file = files.iter().find(|f| f.path == finding.path);
        let waiver = file.and_then(|f| f.waiver_for(&finding.rule, finding.line));
        match waiver {
            Some(w) => waived.push(WaivedDiagnostic {
                diagnostic: finding,
                reason: w.reason.clone().unwrap_or_default(),
            }),
            None => diagnostics.push(finding),
        }
    }
    // Waiver hygiene runs last and is itself unwaivable.
    for file in files {
        waiver_hygiene(file, &mut diagnostics);
    }
    diagnostics.sort();
    waived.sort();
    (diagnostics, waived)
}

fn push(
    findings: &mut Vec<Diagnostic>,
    file: &SourceFile,
    tok: &Token,
    rule: &str,
    message: String,
) {
    findings.push(Diagnostic {
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        rule: rule.to_string(),
        message,
    });
}

/// The `wall-clock` rule: nondeterministic inputs in library code.
fn wall_clock(config: &Config, file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    if file.is_test_file || !config.wall_clock_applies(&file.path) {
        return;
    }
    const PATTERNS: &[(&[Pat], &str)] = &[
        (
            &[
                Pat::Id("SystemTime"),
                Pat::P(':'),
                Pat::P(':'),
                Pat::Id("now"),
            ],
            "`SystemTime::now()` reads the wall clock; results must replay from \
             (seed, fingerprint, trial index) alone",
        ),
        (
            &[Pat::Id("Instant"), Pat::P(':'), Pat::P(':'), Pat::Id("now")],
            "`Instant::now()` reads a clock; keep timing out of result-bearing library code",
        ),
        (
            &[Pat::Id("env"), Pat::P(':'), Pat::P(':'), Pat::Id("var")],
            "`std::env::var` makes behavior depend on ambient process state; \
             read configuration at entry points and pass it down",
        ),
        (
            &[Pat::Id("env"), Pat::P(':'), Pat::P(':'), Pat::Id("var_os")],
            "`std::env::var_os` makes behavior depend on ambient process state; \
             read configuration at entry points and pass it down",
        ),
        (
            &[Pat::Id("thread_rng")],
            "`thread_rng()` draws OS entropy; derive RNG streams from the master seed",
        ),
        (
            &[Pat::Id("from_entropy")],
            "`from_entropy()` draws OS entropy; derive RNG streams from the master seed",
        ),
    ];
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if file.in_test_region(tok.line) {
            continue;
        }
        for (pattern, message) in PATTERNS {
            if seq_at(&file.tokens, i, pattern) {
                push(findings, file, tok, WALL_CLOCK, (*message).to_string());
            }
        }
    }
}

/// The `unordered-iter` rule: `HashMap`/`HashSet` anywhere in the scoped
/// crates. Iteration order over these types is nondeterministic, and no
/// static analysis can prove a map is never iterated once it exists — so
/// the crates that feed fingerprints, serialized artifacts, or merge folds
/// must not hold one at all. `BTreeMap`/`BTreeSet` are drop-in ordered
/// replacements; a sorted `Vec` works for build-once tables.
fn unordered_iter(config: &Config, file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    if file.is_test_file || !config.unordered_applies(&file.path) {
        return;
    }
    for tok in &file.tokens {
        if file.in_test_region(tok.line) {
            continue;
        }
        if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
            push(
                findings,
                file,
                tok,
                UNORDERED_ITER,
                format!(
                    "`{}` iteration order is nondeterministic and this crate feeds \
                     fingerprints/serialization/merge folds; use `BTree{}` or a sorted Vec",
                    tok.text,
                    tok.text.trim_start_matches("Hash")
                ),
            );
        }
    }
}

/// The `unsafe-audit` rule: every crate root must `#![forbid(unsafe_code)]`
/// and `unsafe` may only appear in allowlisted crates.
fn unsafe_audit(config: &Config, file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    if config.unsafe_allowed(&file.path) {
        return;
    }
    if config.is_crate_root(&file.path) {
        let has_forbid = (0..file.tokens.len()).any(|i| {
            seq_at(
                &file.tokens,
                i,
                &[
                    Pat::P('#'),
                    Pat::P('!'),
                    Pat::P('['),
                    Pat::Id("forbid"),
                    Pat::P('('),
                    Pat::Id("unsafe_code"),
                    Pat::P(')'),
                    Pat::P(']'),
                ],
            )
        });
        if !has_forbid {
            findings.push(Diagnostic {
                path: file.path.clone(),
                line: 1,
                col: 1,
                rule: UNSAFE_AUDIT.to_string(),
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    for tok in &file.tokens {
        if tok.is_ident("unsafe") {
            push(
                findings,
                file,
                tok,
                UNSAFE_AUDIT,
                "`unsafe` outside the allowlisted allocator shim".to_string(),
            );
        }
    }
}

/// The `hot-path-alloc` rule: allocating calls inside the designated
/// allocation-free kernel modules. Compile-time constructors waive
/// themselves with one function-level annotation.
fn hot_path_alloc(config: &Config, file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    if !config.is_hot_module(&file.path) {
        return;
    }
    const PATTERNS: &[(&[Pat], &str)] = &[
        (
            &[Pat::Id("Vec"), Pat::P(':'), Pat::P(':'), Pat::Id("new")],
            "Vec::new",
        ),
        (
            &[
                Pat::Id("Vec"),
                Pat::P(':'),
                Pat::P(':'),
                Pat::Id("with_capacity"),
            ],
            "Vec::with_capacity",
        ),
        (&[Pat::Id("vec"), Pat::P('!')], "vec![]"),
        (
            &[Pat::Id("Box"), Pat::P(':'), Pat::P(':'), Pat::Id("new")],
            "Box::new",
        ),
        (
            &[Pat::Id("String"), Pat::P(':'), Pat::P(':'), Pat::Id("new")],
            "String::new",
        ),
        (
            &[Pat::Id("String"), Pat::P(':'), Pat::P(':'), Pat::Id("from")],
            "String::from",
        ),
        (&[Pat::Id("format"), Pat::P('!')], "format!"),
        (&[Pat::P('.'), Pat::Id("to_vec")], ".to_vec()"),
        (&[Pat::P('.'), Pat::Id("to_string")], ".to_string()"),
        (&[Pat::P('.'), Pat::Id("to_owned")], ".to_owned()"),
        (&[Pat::P('.'), Pat::Id("clone")], ".clone()"),
        (&[Pat::P('.'), Pat::Id("collect")], ".collect()"),
    ];
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if file.in_test_region(tok.line) {
            continue;
        }
        for (pattern, name) in PATTERNS {
            if seq_at(&file.tokens, i, pattern) {
                push(
                    findings,
                    file,
                    tok,
                    HOT_PATH_ALLOC,
                    format!(
                        "`{name}` allocates inside a designated allocation-free kernel module \
                         (budgeted by alloc_regression.rs); reuse scratch buffers, or waive \
                         the enclosing compile-time constructor"
                    ),
                );
            }
        }
    }
}

/// The `env-keys` rule: a string literal that *is* a workspace env-var name
/// outside the `env_keys` module that owns them.
fn env_keys(config: &Config, file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    if file.path == config.env_keys_home {
        return;
    }
    for tok in &file.tokens {
        if tok.kind == TokenKind::Str && tok.text.starts_with(&config.env_key_prefix) {
            push(
                findings,
                file,
                tok,
                ENV_KEYS,
                format!(
                    "env-var name `{}` spelled as a literal; use the constant in \
                     `protocol::env_keys` so typos cannot fork the configuration surface",
                    tok.text
                ),
            );
        }
    }
}

/// The `internal-deprecated` rule: calls to workspace-`#[deprecated]` items
/// from live (non-test) code outside the defining file.
fn internal_deprecated(files: &[SourceFile], findings: &mut Vec<Diagnostic>) {
    // Pass 1: collect the names of deprecated items and where they live.
    let mut deprecated: Vec<(String, String)> = Vec::new();
    for file in files {
        let mut i = 0;
        while i < file.tokens.len() {
            if !seq_at(&file.tokens, i, &[Pat::P('#'), Pat::P('[')])
                || !file.tokens[i + 2..]
                    .first()
                    .is_some_and(|t| t.is_ident("deprecated"))
            {
                i += 1;
                continue;
            }
            // Find the deprecated item's name: the identifier after the next
            // item keyword following this attribute.
            const ITEM_KEYWORDS: &[&str] = &["fn", "struct", "enum", "const", "type", "trait"];
            let mut j = i + 3;
            while j < file.tokens.len() {
                let tok = &file.tokens[j];
                if ITEM_KEYWORDS.iter().any(|k| tok.is_ident(k)) {
                    if let Some(name) = file.tokens.get(j + 1) {
                        if name.kind == TokenKind::Ident {
                            deprecated.push((name.text.clone(), file.path.clone()));
                        }
                    }
                    break;
                }
                j += 1;
            }
            i += 3;
        }
    }
    // Pass 2: flag call-shaped uses elsewhere.
    for file in files {
        if file.is_test_file {
            continue;
        }
        for i in 0..file.tokens.len() {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_region(tok.line) {
                continue;
            }
            if !file.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            for (name, home) in &deprecated {
                if &tok.text == name && &file.path != home {
                    push(
                        findings,
                        file,
                        tok,
                        INTERNAL_DEPRECATED,
                        format!(
                            "call to workspace-deprecated `{name}` (defined in {home}) from \
                             live code; migrate to its replacement"
                        ),
                    );
                }
            }
        }
    }
}

/// The `wire-fixture` rule: every `pub` serde-derived type in the engine
/// wire modules must be named by the golden-fixture witness test.
fn wire_fixture(
    config: &Config,
    files: &[SourceFile],
    fixture_names: &[String],
    findings: &mut Vec<Diagnostic>,
) {
    let witness_idents: Vec<String> = files
        .iter()
        .find(|f| f.path == config.wire_witness)
        .map(|f| f.ident_set().iter().map(|s| s.to_string()).collect())
        .unwrap_or_default();
    for file in files {
        if !config.wire_modules.iter().any(|m| m == &file.path) {
            continue;
        }
        if fixture_names.is_empty() {
            findings.push(Diagnostic {
                path: file.path.clone(),
                line: 1,
                col: 1,
                rule: WIRE_FIXTURE.to_string(),
                message: format!(
                    "no golden fixtures found under {}; the wire format is unlocked",
                    config.fixtures_dir
                ),
            });
            continue;
        }
        for (name, tok) in pub_serde_types(file) {
            if !witness_idents.iter().any(|w| w == &name) {
                push(
                    findings,
                    file,
                    tok,
                    WIRE_FIXTURE,
                    format!(
                        "pub serde type `{name}` is not named by {}; add a golden fixture \
                         (or typed assertion) so its wire shape cannot drift silently",
                        config.wire_witness
                    ),
                );
            }
        }
    }
}

/// Collects `pub struct`/`pub enum` items whose attributes derive
/// `Serialize` or `Deserialize`. `pub(crate)` and narrower are skipped —
/// they are not wire surface.
fn pub_serde_types(file: &SourceFile) -> Vec<(String, &Token)> {
    let mut result = Vec::new();
    let tokens = &file.tokens;
    let mut pending_attr_idents: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((end, idents)) = crate::source::attribute_span(tokens, i) {
            pending_attr_idents.extend(idents);
            i = end + 1;
            continue;
        }
        let tok = &tokens[i];
        if tok.is_ident("pub") {
            let mut j = i + 1;
            let restricted = tokens.get(j).is_some_and(|t| t.is_punct('('));
            if restricted {
                while j < tokens.len() && !tokens[j].is_punct(')') {
                    j += 1;
                }
                j += 1;
            }
            let is_type = tokens
                .get(j)
                .is_some_and(|t| t.is_ident("struct") || t.is_ident("enum"));
            if is_type && !restricted {
                let derives_serde = pending_attr_idents
                    .iter()
                    .any(|s| s == "Serialize" || s == "Deserialize");
                if derives_serde {
                    if let Some(name) = tokens.get(j + 1) {
                        if name.kind == TokenKind::Ident {
                            result.push((name.text.clone(), name));
                        }
                    }
                }
            }
            pending_attr_idents.clear();
            i = j + 1;
            continue;
        }
        pending_attr_idents.clear();
        i += 1;
    }
    result
}

/// The `waiver-hygiene` rule: bare waivers and waivers naming unknown
/// rules. Unwaivable by design.
fn waiver_hygiene(file: &SourceFile, findings: &mut Vec<Diagnostic>) {
    for waiver in &file.waivers {
        if !waiver.unknown_rules.is_empty() {
            findings.push(Diagnostic {
                path: file.path.clone(),
                line: waiver.line,
                col: waiver.col,
                rule: WAIVER_HYGIENE.to_string(),
                message: format!(
                    "waiver names unknown rule(s) {:?}; valid rules: {}",
                    waiver.unknown_rules,
                    ALL_RULES.join(", ")
                ),
            });
        }
        if waiver.reason.is_none() && !waiver.rules.is_empty() {
            findings.push(Diagnostic {
                path: file.path.clone(),
                line: waiver.line,
                col: waiver.col,
                rule: WAIVER_HYGIENE.to_string(),
                message: format!(
                    "bare waiver for {:?} with no reason; write \
                     `// detlint: allow({}): <why this site is exempt>`",
                    waiver.rules,
                    waiver.rules.join(", ")
                ),
            });
        }
    }
}
