//! Diagnostics and the lint report: the tool's output surface.
//!
//! Both shapes derive the workspace serde shim's `Serialize`/`Deserialize`,
//! so `detlint --format json` emits machine-readable findings that
//! round-trip through `serde::json` — the same wire discipline every other
//! artifact in this repository follows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One finding: a rule violated at a source position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule's identifier (e.g. `wall-clock`), valid in a waiver.
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A waived finding: the diagnostic plus the reason its waiver recorded.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WaivedDiagnostic {
    /// The finding that the waiver suppressed.
    pub diagnostic: Diagnostic,
    /// The reason given in the `// detlint: allow(rule): reason` comment.
    pub reason: String,
}

/// The whole run's result. The process exits non-zero exactly when
/// `diagnostics` is non-empty, so CI can gate on the exit code and archive
/// the JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u32,
    /// Unwaived findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a reasoned inline waiver, same order.
    pub waived: Vec<WaivedDiagnostic>,
}

impl LintReport {
    /// True when the run found nothing unwaived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for diag in &self.diagnostics {
            writeln!(f, "{diag}")?;
        }
        writeln!(
            f,
            "detlint: {} file(s) scanned, {} finding(s), {} waived",
            self.files_scanned,
            self.diagnostics.len(),
            self.waived.len()
        )
    }
}
