//! The rule catalog's scoping policy: which paths each rule patrols.
//!
//! All scoping is data, not code, so the golden tests can lint synthetic
//! trees with a custom [`Config`] while `cargo run -p detlint` uses
//! [`Config::workspace`] — the checked-in policy for this repository.
//! Paths are workspace-relative with forward slashes.

/// Scoping policy for one lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes never scanned at all (fixture inputs, generated code).
    pub exclude: Vec<String>,
    /// Path prefixes exempt from the `wall-clock` rule (vendored compat
    /// shims). Binary entry points (`/bin/` and crate `src/main.rs`),
    /// tests, benches and examples are exempt structurally, not by this
    /// list.
    pub wall_clock_exempt: Vec<String>,
    /// Path prefixes where `unordered-iter` applies: the crates that feed
    /// fingerprints, serialized artifacts, or merge folds.
    pub unordered_scope: Vec<String>,
    /// Exact files holding the allocation-free kernel hot paths.
    pub hot_modules: Vec<String>,
    /// Path prefixes of crates allowed to contain `unsafe` (and to omit
    /// `#![forbid(unsafe_code)]` from their root).
    pub unsafe_allowlist: Vec<String>,
    /// Exact files whose `pub` serde-derived types must be fixture-covered.
    pub wire_modules: Vec<String>,
    /// The test file that parses the golden fixtures; a wire type counts as
    /// covered when this file names it.
    pub wire_witness: String,
    /// Directory of golden wire fixtures (must be non-empty).
    pub fixtures_dir: String,
    /// Environment-variable prefix owned by this workspace.
    pub env_key_prefix: String,
    /// The one module allowed to spell env-key string literals.
    pub env_keys_home: String,
}

impl Config {
    /// The checked-in policy for this repository.
    pub fn workspace() -> Config {
        Config {
            exclude: vec![
                "target/".into(),
                // detlint's own golden-test inputs deliberately violate
                // every rule; they are linted by the golden suite under
                // synthetic paths, never as workspace sources.
                "crates/detlint/tests/inputs/".into(),
            ],
            wall_clock_exempt: vec!["crates/compat/".into()],
            unordered_scope: vec![
                "crates/protocol/src/".into(),
                "crates/noise/src/".into(),
                "crates/qchannel/src/".into(),
                "crates/qsim/src/".into(),
                "crates/analysis/src/".into(),
                "crates/attacks/src/".into(),
                "crates/bench/src/".into(),
                "crates/serve/src/".into(),
                "src/".into(),
            ],
            hot_modules: vec![
                "crates/qsim/src/kernel.rs".into(),
                "crates/qsim/src/pauli_frame.rs".into(),
                "crates/noise/src/compiled.rs".into(),
                "crates/noise/src/twirl.rs".into(),
                "crates/qchannel/src/compiled.rs".into(),
            ],
            unsafe_allowlist: vec![
                // The counting global allocator is the workspace's single
                // sanctioned `unsafe` (GlobalAlloc has an unsafe contract).
                "crates/compat/alloc_counter/".into(),
            ],
            wire_modules: vec![
                "crates/protocol/src/engine/shard.rs".into(),
                "crates/protocol/src/engine/queue.rs".into(),
                "crates/protocol/src/engine/campaign.rs".into(),
                "crates/protocol/src/wire.rs".into(),
            ],
            wire_witness: "tests/wire_format.rs".into(),
            fixtures_dir: "tests/fixtures".into(),
            // detlint: allow(env-keys): this is the prefix the rule enforces, not a key read site
            env_key_prefix: "UA_DI_QSDC_".into(),
            env_keys_home: "crates/protocol/src/env_keys.rs".into(),
        }
    }

    /// True when `path` must not be scanned.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p))
    }

    /// True when the `wall-clock` rule patrols `path`. Binary entry
    /// points — `/bin/` files and a crate's `src/main.rs` — are where
    /// configuration is read and passed down, so the rule skips them.
    pub fn wall_clock_applies(&self, path: &str) -> bool {
        !path.contains("/bin/")
            && !path.ends_with("/src/main.rs")
            && !self.wall_clock_exempt.iter().any(|p| path.starts_with(p))
    }

    /// True when the `unordered-iter` rule patrols `path`.
    pub fn unordered_applies(&self, path: &str) -> bool {
        self.unordered_scope.iter().any(|p| path.starts_with(p))
    }

    /// True when `path` is a designated allocation-free kernel module.
    pub fn is_hot_module(&self, path: &str) -> bool {
        self.hot_modules.iter().any(|p| p == path)
    }

    /// True when the crate owning `path` may contain `unsafe`.
    pub fn unsafe_allowed(&self, path: &str) -> bool {
        self.unsafe_allowlist.iter().any(|p| path.starts_with(p))
    }

    /// True when `path` is a crate root (`src/lib.rs`) whose header the
    /// `unsafe-audit` rule must check.
    pub fn is_crate_root(&self, path: &str) -> bool {
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::workspace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_entry_points_are_exempt_from_wall_clock() {
        let config = Config::workspace();
        // Both binary forms: `src/bin/*.rs` and a crate's `src/main.rs`.
        assert!(!config.wall_clock_applies("crates/bench/src/bin/shardctl.rs"));
        assert!(!config.wall_clock_applies("crates/serve/src/main.rs"));
        // Exempt-by-prefix (vendored shims).
        assert!(!config.wall_clock_applies("crates/compat/rand/src/lib.rs"));
        // Library code stays patrolled — including a module merely named
        // like an entry point outside `src/`.
        assert!(config.wall_clock_applies("crates/serve/src/server.rs"));
        assert!(config.wall_clock_applies("crates/protocol/src/engine.rs"));
    }
}
