//! The `detlint` binary: lint the workspace, print diagnostics, gate CI.
//!
//! ```text
//! cargo run -p detlint                    # human-readable diagnostics
//! cargo run -p detlint -- --format json   # machine-readable LintReport
//! cargo run -p detlint -- --root DIR      # lint another workspace
//! ```
//!
//! Exit codes: `0` clean, `1` unwaived findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use detlint::{workspace, Config, Linter};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: detlint [--format human|json] [--root DIR]";

fn main() -> ExitCode {
    let mut format = String::from("human");
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                _ => return usage_error("--format takes `human` or `json`"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root takes a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("detlint: cannot read current directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match workspace::find_root(&cwd) {
                Some(found) => found,
                None => {
                    eprintln!("detlint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match Linter::new(Config::workspace()).lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("detlint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        println!("{}", serde::json::to_string(&report));
    } else {
        print!("{report}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("detlint: {message}\n{USAGE}");
    ExitCode::from(2)
}
