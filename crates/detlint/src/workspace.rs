//! Workspace discovery: find the root, walk the tree, load the sources.
//!
//! The walk is deterministic — directory entries are sorted by name before
//! descent — so two runs over the same tree always produce byte-identical
//! reports (detlint holds itself to the invariants it enforces).

use crate::config::Config;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Loads every non-excluded `.rs` file under `root` as
/// (workspace-relative path, contents), sorted by path.
pub fn load_sources(root: &Path, config: &Config) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    walk(root, root, config, &mut sources)?;
    sources.sort();
    Ok(sources)
}

fn walk(
    root: &Path,
    dir: &Path,
    config: &Config,
    sources: &mut Vec<(String, String)>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = relative(root, &path);
        if config.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            // Hidden directories (.git, .github) hold no Rust sources.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(root, &path, config, sources)?;
        } else if rel.ends_with(".rs") {
            sources.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Names of the golden fixture files under the configured fixtures dir
/// (empty when the directory is missing).
pub fn fixture_names(root: &Path, config: &Config) -> Vec<String> {
    let dir = root.join(&config.fixtures_dir);
    let mut names: Vec<String> = fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// `path` relative to `root`, with forward slashes on every platform.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
