//! # detlint — a dependency-free determinism linter for this workspace
//!
//! Every guarantee this reproduction ships — bit-for-bit replay from
//! (seed, fingerprint, trial index), byte-identical merges across SIGKILLed
//! fleets, allocation-free kernel loops — is otherwise enforced only
//! *dynamically*, by tests that must happen to exercise the offending path.
//! One `SystemTime::now()` or `HashMap` iteration landing in a fold path
//! breaks byte-identity in ways property tests may never sample. detlint
//! makes determinism a **statically checked property of the source**: a
//! hand-rolled Rust lexer (strings, raw strings, char literals and nested
//! block comments handled exactly) feeds a rule engine that walks every
//! `.rs` file in the workspace and emits `file:line:col` diagnostics, human
//! readable or JSON (via the workspace serde shim).
//!
//! The rule catalog lives in [`rules`]; the scoping policy in
//! [`config::Config::workspace`]; the full invariant write-up in
//! `docs/determinism.md` at the repository root.
//!
//! Intentional violations are waived inline — and the waiver syntax is
//! itself linted:
//!
//! ```text
//! let lease = now_ms(); // detlint: allow(wall-clock): leases are wall time by design
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use detlint::{Config, Linter};
//!
//! let linter = Linter::new(Config::workspace());
//! let sources = vec![(
//!     "crates/protocol/src/engine/fold.rs".to_string(),
//!     "fn merge() { let t = SystemTime::now(); }".to_string(),
//! )];
//! let report = linter.lint_sources(&sources, &["plan.json".to_string()]);
//! assert_eq!(report.diagnostics.len(), 1);
//! assert_eq!(report.diagnostics[0].rule, "wall-clock");
//! // The report round-trips through the workspace serde shim:
//! let json = serde::json::to_string(&report);
//! assert_eq!(serde::json::from_str::<detlint::LintReport>(&json).unwrap(), report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::Config;
pub use diag::{Diagnostic, LintReport, WaivedDiagnostic};
pub use source::SourceFile;

use std::io;
use std::path::Path;

/// The linter: a [`Config`] plus the run entry points.
#[derive(Debug, Default)]
pub struct Linter {
    config: Config,
}

impl Linter {
    /// A linter with the given scoping policy.
    pub fn new(config: Config) -> Linter {
        Linter { config }
    }

    /// Lints in-memory sources (path, contents). `fixture_names` stands in
    /// for the `tests/fixtures/` directory listing.
    pub fn lint_sources(
        &self,
        sources: &[(String, String)],
        fixture_names: &[String],
    ) -> LintReport {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, text)| SourceFile::parse(path, text, rules::ALL_RULES))
            .collect();
        let (diagnostics, waived) = rules::run_all(&self.config, &files, fixture_names);
        LintReport {
            files_scanned: files.len() as u32,
            diagnostics,
            waived,
        }
    }

    /// Walks the workspace at `root` and lints every `.rs` file.
    pub fn lint_workspace(&self, root: &Path) -> io::Result<LintReport> {
        let sources = workspace::load_sources(root, &self.config)?;
        let fixtures = workspace::fixture_names(root, &self.config);
        Ok(self.lint_sources(&sources, &fixtures))
    }
}
