//! A hand-rolled Rust lexer: just enough tokenization for rule matching.
//!
//! The lexer's one job is to never confuse *code* with *text*: a
//! `"SystemTime::now"` inside a string literal, a `vec![]` inside a doc
//! comment, or a `HashMap` inside a nested block comment must not trip a
//! rule. It therefore handles, precisely, the Rust constructs that embed
//! arbitrary text:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, including doc forms),
//! - string literals with escapes (`"\""`), byte strings (`b".."`) and
//!   C strings (`c".."`),
//! - raw strings with any hash depth (`r"..."`, `r#"..."#`, `br##".."##`),
//! - char and byte-char literals (`'\''`, `b'x'`) versus lifetimes
//!   (`'static`) and loop labels (`'outer:`),
//! - numeric literals including separators, exponents and suffixes
//!   (`1_700_000_000_000`, `1.0e-9`, `0xFFu64`).
//!
//! Everything else becomes a flat stream of identifier, literal and
//! single-character punctuation tokens carrying 1-based line/column
//! positions. Comments are captured on a side channel (with positions) so
//! the waiver parser can read them without the rule engine ever seeing
//! their text as code.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unsafe_code`).
    Ident,
    /// A string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`). The token
    /// text is the literal's *content* (quotes and hashes stripped, escapes
    /// left as written).
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime or loop label (`'static`, `'outer`), text without the `'`.
    Lifetime,
    /// A numeric literal, text as written.
    Number,
    /// A single punctuation character (`:`, `!`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's classification.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what is stored per kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && {
            let mut chars = self.text.chars();
            chars.next() == Some(ch)
        }
    }
}

/// A comment captured during lexing (waivers live here).
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// The comment's text without its delimiters (`//`, `/*`, `*/`).
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based column where the comment starts.
    pub col: u32,
    /// True for `/* … */` comments, false for `// …`.
    pub block: bool,
}

/// The lexer's output: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    /// Lookahead buffer (peeked characters not yet consumed).
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars(),
            peeked: Vec::new(),
            line: 1,
            col: 1,
        }
    }

    /// Peeks `n` characters ahead (0 = next character) without consuming.
    fn peek(&mut self, n: usize) -> Option<char> {
        while self.peeked.len() <= n {
            self.peeked.push(self.chars.next()?);
        }
        self.peeked.get(n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() {
            self.chars.next()?
        } else {
            self.peeked.remove(0)
        };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `source` into tokens and comments. Unterminated constructs (a
/// string or comment running to EOF) terminate their token at EOF rather
/// than erroring: a linter must degrade gracefully on torn input.
pub fn lex(source: &str) -> LexOutput {
    let mut cur = Cursor::new(source);
    let mut out = LexOutput::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            out.comments.push(line_comment(&mut cur, line, col));
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            out.comments.push(block_comment(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            out.tokens.push(quoted_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.tokens.push(char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(number(&mut cur, line, col));
            continue;
        }
        if c == '_' || c.is_alphabetic() {
            if let Some(token) = prefixed_literal(&mut cur, line, col) {
                out.tokens.push(token);
            } else {
                out.tokens.push(ident(&mut cur, line, col));
            }
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

fn line_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    cur.bump();
    cur.bump(); // the two slashes
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Comment {
        text,
        line,
        col,
        block: false,
    }
}

fn block_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    cur.bump();
    cur.bump(); // the `/*`
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Comment {
        text,
        line,
        col,
        block: true,
    }
}

/// Lexes a `"…"` string (cursor on the opening quote), honoring `\` escapes.
fn quoted_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
            }
            _ => text.push(c),
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Lexes a raw string (cursor on the `r`): counts `#`s after the prefix and
/// scans for the matching `"##…#` terminator — `#` inside the content never
/// closes a deeper-hashed literal.
fn raw_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    while cur.peek(0) != Some('#') && cur.peek(0) != Some('"') {
        cur.bump(); // the r / br / cr prefix
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for n in 0..hashes {
                if cur.peek(n) != Some('#') {
                    text.push('"');
                    text.extend(std::iter::repeat_n('#', n));
                    for _ in 0..n {
                        cur.bump();
                    }
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Disambiguates `'a'` / `'\n'` (char literals) from `'static` / `'outer`
/// (lifetimes and labels). Cursor sits on the `'`.
fn char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Token {
    // A backslash or a non-identifier character right after the quote can
    // only start a char literal; an identifier character starts a char
    // literal exactly when the character after it is the closing quote.
    let is_char = match cur.peek(1) {
        Some('\\') => true,
        Some(c) if c == '_' || c.is_alphanumeric() => cur.peek(2) == Some('\''),
        Some('\'') => false, // `''` cannot occur in valid Rust; treat as punct-ish char
        Some(_) => true,
        None => false,
    };
    cur.bump(); // the quote
    if !is_char {
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokenKind::Lifetime,
            text,
            line,
            col,
        };
    }
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                text.push('\\');
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
            }
            _ => text.push(c),
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line,
        col,
    }
}

/// Lexes a numeric literal: digits, `_` separators, hex/bin/octal bodies,
/// one fractional point, exponents with signs, and type suffixes.
fn number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut seen_dot = false;
    while let Some(c) = cur.peek(0) {
        if c == '_' || c.is_ascii_alphanumeric() {
            let at_exponent = (c == 'e' || c == 'E')
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o");
            text.push(c);
            cur.bump();
            if at_exponent && matches!(cur.peek(0), Some('+') | Some('-')) {
                text.push(cur.bump().unwrap());
            }
        } else if c == '.' && !seen_dot && matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) {
            seen_dot = true;
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Number,
        text,
        line,
        col,
    }
}

/// Detects the string-literal prefixes `r` `b` `c` `br` `cr` (cursor on the
/// first letter) and dispatches to the right literal lexer; `None` means the
/// letters are an ordinary identifier.
fn prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let first = cur.peek(0)?;
    match (first, cur.peek(1)) {
        ('r', _) if raw_opens(cur, 1) => Some(raw_string(cur, line, col)),
        ('b', Some('"')) | ('c', Some('"')) => {
            cur.bump(); // the prefix letter
            Some(quoted_string(cur, line, col))
        }
        ('b', Some('\'')) => {
            cur.bump(); // the b
            Some(char_or_lifetime(cur, line, col))
        }
        ('b', Some('r')) | ('c', Some('r')) if raw_opens(cur, 2) => {
            Some(raw_string(cur, line, col))
        }
        _ => None,
    }
}

/// True when, starting `at` characters ahead, the stream reads `#*"` — i.e.
/// a raw-string body actually opens (so `r#[cfg]`-style uses of `r#` as a
/// raw identifier prefix don't get eaten).
fn raw_opens(cur: &mut Cursor, at: usize) -> bool {
    let mut n = at;
    while cur.peek(n) == Some('#') {
        n += 1;
    }
    cur.peek(n) == Some('"')
}

fn ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '_' || c.is_alphanumeric() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_content_from_the_token_stream() {
        let out = lex(r#"let x = "SystemTime::now()";"#);
        assert!(!out.tokens.iter().any(|t| t.is_ident("SystemTime")));
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let out = lex(r###"let x = r#"quote " and # inside"# ; let y = 1;"###);
        let strs: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"quote " and # inside"#);
        assert!(out.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let out = lex("/* outer /* inner */ still outer */ fn x() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
        assert!(out.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let out = lex(r"fn f<'a>(x: &'a str) { let c = 'x'; let q = '\''; let n = '\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            3
        );
    }

    #[test]
    fn byte_and_c_string_prefixes_lex_as_strings() {
        for src in [
            r#"b"bytes""#,
            r#"c"cstr""#,
            r##"br#"raw bytes"#"##,
            r##"cr#"raw c"#"##,
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Str, "{src}");
        }
        // … while plain identifiers starting with those letters stay idents.
        assert_eq!(kinds("break")[0].0, TokenKind::Ident);
        assert_eq!(kinds("crate")[0].0, TokenKind::Ident);
        assert_eq!(kinds("rng")[0].0, TokenKind::Ident);
    }

    #[test]
    fn numbers_with_separators_exponents_and_suffixes() {
        for src in [
            "1_700_000_000_000",
            "1.0e-9",
            "0xFFu64",
            "3.25f32",
            "0b1010",
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Number, "{src}");
            assert_eq!(toks[0].1, src);
        }
        // A range expression keeps its dots as punctuation.
        let toks = kinds("0..5");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].0, TokenKind::Number);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let out = lex("fn a() {}\n  let b;");
        let b = out.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!((b.line, b.col), (2, 7));
    }
}
