//! Per-file analysis context: tokens plus the structural facts rules need.
//!
//! A [`SourceFile`] owns the lexed token stream and precomputes three maps:
//!
//! - **Function spans** — `fn` items with their signature and body line
//!   ranges, so a waiver attached to a function signature can cover the
//!   whole body (compile-time constructors in hot-path modules waive all
//!   their setup allocations with one annotated line).
//! - **Test regions** — line ranges under `#[cfg(test)]` / `#[test]`, plus
//!   whole files under a `tests/` or `benches/` directory. Most rules guard
//!   shipped behavior, not test scaffolding.
//! - **Waivers** — parsed `// detlint: allow(<rule>): <reason>` comments.
//!   A waiver covers the line it trails, or the next code line below it
//!   (skipping attributes); when that line is a function signature it
//!   covers the function's body too. A waiver with no reason still
//!   suppresses its target but is itself reported by the `waiver-hygiene`
//!   rule — silence must be explained.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeSet;

/// A `fn` item's position: signature start, body open, body end (lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnSpan {
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Line of the body's opening `{` (equals `sig_line` for one-liners).
    pub open_line: u32,
    /// Line of the body's closing `}`.
    pub end_line: u32,
}

/// One parsed waiver comment.
#[derive(Debug, Clone, PartialEq)]
pub struct Waiver {
    /// The rules this waiver suppresses.
    pub rules: Vec<String>,
    /// The reason after the closing paren; `None` for a bare waiver.
    pub reason: Option<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// Column of the comment itself.
    pub col: u32,
    /// First line the waiver covers (trailing: its own line; standalone:
    /// the next code line below, attributes skipped).
    pub target_line: u32,
    /// Last line the waiver covers (extends over a function body when the
    /// target line is a function signature).
    pub end_line: u32,
    /// Rule names in the directive that detlint does not know.
    pub unknown_rules: Vec<String>,
}

/// A lexed and structurally indexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The token stream (comments excluded).
    pub tokens: Vec<Token>,
    /// The comment side channel.
    pub comments: Vec<Comment>,
    /// Parsed waivers, in source order.
    pub waivers: Vec<Waiver>,
    /// All `fn` item spans.
    pub fn_spans: Vec<FnSpan>,
    /// Inclusive line ranges belonging to `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// True when the whole file is test or bench scaffolding by location.
    pub is_test_file: bool,
}

impl SourceFile {
    /// Lexes and indexes `text` under the given workspace-relative `path`.
    /// `known_rules` drives waiver validation.
    pub fn parse(path: &str, text: &str, known_rules: &[&str]) -> SourceFile {
        let out = lex(text);
        let tokens = out.tokens;
        let comments = out.comments;
        let attr_lines = attribute_lines(&tokens);
        let fn_spans = fn_spans(&tokens);
        let test_regions = test_regions(&tokens);
        let is_test_file = path_is_test(path);
        let waivers = comments
            .iter()
            .filter_map(|c| parse_waiver(c, &tokens, &attr_lines, &fn_spans, known_rules))
            .collect();
        SourceFile {
            path: path.to_string(),
            tokens,
            comments,
            waivers,
            fn_spans,
            test_regions,
            is_test_file,
        }
    }

    /// True when `line` lies in test scaffolding.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// The waiver covering `rule` at `line`, if any.
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<&Waiver> {
        self.waivers.iter().find(|w| {
            (w.target_line..=w.end_line).contains(&line) && w.rules.iter().any(|r| r == rule)
        })
    }

    /// All identifier texts in the file (for cross-reference rules).
    pub fn ident_set(&self) -> BTreeSet<&str> {
        self.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }
}

/// Whether `path` denotes test/bench/example scaffolding by location alone.
fn path_is_test(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
}

/// Lines occupied by outer/inner attributes (`#[…]`, `#![…]`).
fn attribute_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some((end, _)) = attribute_span(tokens, i) {
            for t in &tokens[i..=end] {
                lines.insert(t.line);
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    lines
}

/// If an attribute starts at `i`, returns (index of its closing `]`, the
/// identifiers appearing inside it).
pub(crate) fn attribute_span(tokens: &[Token], i: usize) -> Option<(usize, Vec<String>)> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    for (k, tok) in tokens.iter().enumerate().skip(j) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((k, idents));
            }
        } else if tok.kind == TokenKind::Ident {
            idents.push(tok.text.clone());
        }
    }
    None
}

/// Finds every named `fn` item and its line span. The token after `fn` must
/// be an identifier, so `fn(usize) -> T` pointer types don't register.
fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        if !tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            continue;
        }
        // Scan the signature for the body's `{` (or `;` for a bare decl).
        let mut j = i + 2;
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            continue;
        }
        if let Some(end) = matching_brace(tokens, j) {
            spans.push(FnSpan {
                sig_line: tokens[i].line,
                open_line: tokens[j].line,
                end_line: tokens[end].line,
            });
        }
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Line ranges of items annotated `#[cfg(test)]` or `#[test]`.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let Some((end, idents)) = attribute_span(tokens, i) else {
            i += 1;
            continue;
        };
        let start_line = tokens[i].line;
        i = end + 1;
        let is_test = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
        if !is_test {
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut j = i;
        while let Some((attr_end, _)) = attribute_span(tokens, j) {
            j = attr_end + 1;
        }
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct('{') {
            if let Some(close) = matching_brace(tokens, j) {
                regions.push((start_line, tokens[close].line));
                i = close + 1;
            }
        }
    }
    regions
}

/// Parses one comment into a waiver, when it carries a `detlint:` directive.
fn parse_waiver(
    comment: &Comment,
    tokens: &[Token],
    attr_lines: &BTreeSet<u32>,
    fn_spans: &[FnSpan],
    known_rules: &[&str],
) -> Option<Waiver> {
    // Strip doc-comment sigils so `/// detlint:` and `//! detlint:` parse too.
    let text = comment
        .text
        .trim_start_matches(['/', '!', '*'])
        .trim_start();
    let directive = text.strip_prefix("detlint:")?.trim_start();
    let rest = directive.strip_prefix("allow").unwrap_or("");
    let rest = rest.trim_start();
    let (rules_text, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
        Some(split) => split,
        // `detlint:` with anything unparseable is still a waiver attempt —
        // surface it through `unknown_rules` rather than ignoring it.
        None => ("", directive),
    };
    let mut rules = Vec::new();
    let mut unknown_rules = Vec::new();
    for rule in rules_text.split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        if known_rules.contains(&rule) {
            rules.push(rule.to_string());
        } else {
            unknown_rules.push(rule.to_string());
        }
    }
    if rules.is_empty() && unknown_rules.is_empty() {
        unknown_rules.push(after.trim().to_string());
    }
    let reason = after
        .trim_start()
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());

    let trailing = tokens
        .iter()
        .any(|t| t.line == comment.line && t.col < comment.col);
    let target_line = if trailing {
        comment.line
    } else {
        tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > comment.line && !attr_lines.contains(&l))
            .unwrap_or(comment.line)
    };
    // A waiver attached to a function signature covers the whole body.
    let end_line = fn_spans
        .iter()
        .find(|s| (s.sig_line..=s.open_line).contains(&target_line))
        .map(|s| s.end_line)
        .unwrap_or(target_line);

    Some(Waiver {
        rules,
        reason,
        line: comment.line,
        col: comment.col,
        target_line,
        end_line,
        unknown_rules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["wall-clock", "hot-path-alloc"];

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "let t = now(); // detlint: allow(wall-clock): lease clock\nlet u = 1;";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert!(file.waiver_for("wall-clock", 1).is_some());
        assert!(file.waiver_for("wall-clock", 2).is_none());
        assert!(file.waiver_for("hot-path-alloc", 1).is_none());
        assert_eq!(file.waivers[0].reason.as_deref(), Some("lease clock"));
    }

    #[test]
    fn standalone_waiver_covers_next_code_line_skipping_attributes() {
        let src = "\
// detlint: allow(wall-clock): documented exception
#[inline]
pub fn read() {}
";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert_eq!(file.waivers[0].target_line, 3);
    }

    #[test]
    fn waiver_on_fn_signature_covers_the_body() {
        let src = "\
// detlint: allow(hot-path-alloc): compile-time constructor
fn compile(
    input: usize,
) -> usize {
    let v = Vec::new();
    v.len() + input
}
fn apply() {}
";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert!(file.waiver_for("hot-path-alloc", 5).is_some());
        assert!(file.waiver_for("hot-path-alloc", 8).is_none());
    }

    #[test]
    fn bare_waiver_has_no_reason_and_unknown_rules_surface() {
        let src = "let t = now(); // detlint: allow(wall-clock)\n// detlint: allow(wallclock): typo\nlet u = 1;";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert_eq!(file.waivers.len(), 2);
        assert!(file.waivers[0].reason.is_none());
        assert_eq!(file.waivers[1].unknown_rules, vec!["wallclock".to_string()]);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_test_regions() {
        let src = "\
pub fn shipped() {}
#[cfg(test)]
mod tests {
    #[test]
    fn check() {}
}
";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert!(!file.in_test_region(1));
        assert!(file.in_test_region(4));
        assert!(file.in_test_region(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod shipped {\n    pub fn f() {}\n}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src, RULES);
        assert!(!file.in_test_region(3));
    }

    #[test]
    fn files_under_tests_and_benches_are_wholly_test() {
        for path in [
            "crates/x/tests/suite.rs",
            "crates/x/benches/bench.rs",
            "tests/wire_format.rs",
            "examples/quickstart.rs",
        ] {
            assert!(SourceFile::parse(path, "fn f() {}", RULES).is_test_file);
        }
        assert!(!SourceFile::parse("crates/x/src/lib.rs", "fn f() {}", RULES).is_test_file);
    }
}
