//! Golden tests: lint small synthetic inputs (one per rule, plus lexer
//! torture cases) under controlled paths and pin the **exact JSON** each
//! run emits. Any change to a rule's trigger, message, position, or to the
//! report's wire shape turns one of these red.
//!
//! The inputs live in `tests/inputs/` and deliberately violate the rules,
//! so [`detlint::Config::workspace`] excludes that directory from real
//! workspace scans — they are linted here under synthetic paths instead.

use detlint::{Config, Linter};

/// Lints `files` under the workspace policy and returns the report's JSON,
/// after asserting it round-trips through the workspace serde shim.
fn lint(files: &[(&str, &str)], fixtures: &[&str]) -> String {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    let fixtures: Vec<String> = fixtures.iter().map(|s| s.to_string()).collect();
    let report = Linter::new(Config::workspace()).lint_sources(&sources, &fixtures);
    let json = serde::json::to_string(&report);
    let back: detlint::LintReport = serde::json::from_str(&json).expect("report parses back");
    assert_eq!(back, report, "JSON round-trip changed the report");
    json
}

const FIXTURES: &[&str] = &["shard_plan.json"];

#[test]
fn wall_clock_flags_clocks_env_reads_and_honors_waivers_and_test_regions() {
    let json = lint(
        &[(
            "crates/protocol/src/engine/fold.rs",
            include_str!("inputs/wall_clock.rs"),
        )],
        FIXTURES,
    );
    // Three unwaived findings; the waived `SystemTime::now` keeps its reason;
    // the `Instant::now` inside `#[cfg(test)]` is not reported at all.
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/protocol/src/engine/fold.rs","line":4,"col":5,"rule":"wall-clock","message":"`SystemTime::now()` reads the wall clock; results must replay from (seed, fingerprint, trial index) alone"},{"path":"crates/protocol/src/engine/fold.rs","line":13,"col":13,"rule":"wall-clock","message":"`Instant::now()` reads a clock; keep timing out of result-bearing library code"},{"path":"crates/protocol/src/engine/fold.rs","line":17,"col":10,"rule":"wall-clock","message":"`std::env::var` makes behavior depend on ambient process state; read configuration at entry points and pass it down"}],"waived":[{"diagnostic":{"path":"crates/protocol/src/engine/fold.rs","line":9,"col":5,"rule":"wall-clock","message":"`SystemTime::now()` reads the wall clock; results must replay from (seed, fingerprint, trial index) alone"},"reason":"leases are wall time by design"}]}"#
    );
}

#[test]
fn unordered_iter_flags_every_hash_collection_mention_in_scope() {
    let json = lint(
        &[(
            "crates/protocol/src/engine/merge.rs",
            include_str!("inputs/unordered.rs"),
        )],
        FIXTURES,
    );
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/protocol/src/engine/merge.rs","line":1,"col":24,"rule":"unordered-iter","message":"`HashMap` iteration order is nondeterministic and this crate feeds fingerprints/serialization/merge folds; use `BTreeMap` or a sorted Vec"},{"path":"crates/protocol/src/engine/merge.rs","line":1,"col":33,"rule":"unordered-iter","message":"`HashSet` iteration order is nondeterministic and this crate feeds fingerprints/serialization/merge folds; use `BTreeSet` or a sorted Vec"},{"path":"crates/protocol/src/engine/merge.rs","line":3,"col":33,"rule":"unordered-iter","message":"`HashMap` iteration order is nondeterministic and this crate feeds fingerprints/serialization/merge folds; use `BTreeMap` or a sorted Vec"},{"path":"crates/protocol/src/engine/merge.rs","line":4,"col":19,"rule":"unordered-iter","message":"`HashMap` iteration order is nondeterministic and this crate feeds fingerprints/serialization/merge folds; use `BTreeMap` or a sorted Vec"},{"path":"crates/protocol/src/engine/merge.rs","line":5,"col":20,"rule":"unordered-iter","message":"`HashSet` iteration order is nondeterministic and this crate feeds fingerprints/serialization/merge folds; use `BTreeSet` or a sorted Vec"}],"waived":[]}"#
    );
}

#[test]
fn unsafe_audit_flags_missing_forbid_and_unsafe_blocks() {
    let json = lint(
        &[(
            "crates/demo/src/lib.rs",
            include_str!("inputs/missing_forbid.rs"),
        )],
        FIXTURES,
    );
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/demo/src/lib.rs","line":1,"col":1,"rule":"unsafe-audit","message":"crate root is missing `#![forbid(unsafe_code)]`"},{"path":"crates/demo/src/lib.rs","line":4,"col":5,"rule":"unsafe-audit","message":"`unsafe` outside the allowlisted allocator shim"}],"waived":[]}"#
    );
}

#[test]
fn hot_path_alloc_flags_kernel_allocations_and_honors_fn_scope_waivers() {
    let json = lint(
        &[(
            "crates/qsim/src/kernel.rs",
            include_str!("inputs/hot_alloc.rs"),
        )],
        FIXTURES,
    );
    // The `vec![…]` sits inside a constructor carrying a function-level
    // waiver, so only the `.to_vec()` on the apply path is an error.
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/qsim/src/kernel.rs","line":14,"col":12,"rule":"hot-path-alloc","message":"`.to_vec()` allocates inside a designated allocation-free kernel module (budgeted by alloc_regression.rs); reuse scratch buffers, or waive the enclosing compile-time constructor"}],"waived":[{"diagnostic":{"path":"crates/qsim/src/kernel.rs","line":9,"col":22,"rule":"hot-path-alloc","message":"`vec![]` allocates inside a designated allocation-free kernel module (budgeted by alloc_regression.rs); reuse scratch buffers, or waive the enclosing compile-time constructor"},"reason":"compile-time constructor; apply() reuses scratch"}]}"#
    );
}

#[test]
fn internal_deprecated_flags_cross_file_calls_but_not_the_defining_file() {
    let json = lint(
        &[
            (
                "crates/noise/src/legacy.rs",
                include_str!("inputs/dep_home.rs"),
            ),
            (
                "crates/noise/src/draw.rs",
                include_str!("inputs/dep_caller.rs"),
            ),
        ],
        FIXTURES,
    );
    assert_eq!(
        json,
        r#"{"files_scanned":2,"diagnostics":[{"path":"crates/noise/src/draw.rs","line":2,"col":5,"rule":"internal-deprecated","message":"call to workspace-deprecated `sample_legacy` (defined in crates/noise/src/legacy.rs) from live code; migrate to its replacement"}],"waived":[]}"#
    );
}

#[test]
fn wire_fixture_flags_pub_serde_types_the_witness_does_not_name() {
    let json = lint(
        &[
            (
                "crates/protocol/src/engine/shard.rs",
                include_str!("inputs/wire.rs"),
            ),
            (
                "tests/wire_format.rs",
                include_str!("inputs/wire_witness.rs"),
            ),
        ],
        FIXTURES,
    );
    // `ShardPlan` is named by the witness; `NotWire` derives no serde;
    // `Internal` is pub(crate). Only `ForgottenReceipt` is uncovered.
    assert_eq!(
        json,
        r#"{"files_scanned":2,"diagnostics":[{"path":"crates/protocol/src/engine/shard.rs","line":9,"col":12,"rule":"wire-fixture","message":"pub serde type `ForgottenReceipt` is not named by tests/wire_format.rs; add a golden fixture (or typed assertion) so its wire shape cannot drift silently"}],"waived":[]}"#
    );
}

#[test]
fn wire_fixture_flags_an_empty_fixture_directory() {
    let json = lint(
        &[(
            "crates/protocol/src/engine/shard.rs",
            include_str!("inputs/wire.rs"),
        )],
        &[],
    );
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/protocol/src/engine/shard.rs","line":1,"col":1,"rule":"wire-fixture","message":"no golden fixtures found under tests/fixtures; the wire format is unlocked"}],"waived":[]}"#
    );
}

#[test]
fn env_keys_flags_literals_outside_the_home_module() {
    let json = lint(
        &[(
            "crates/bench/src/campaigns.rs",
            include_str!("inputs/env_literal.rs"),
        )],
        FIXTURES,
    );
    // One literal yields two findings: the ambient env read (wall-clock)
    // and the off-site key spelling (env-keys).
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/bench/src/campaigns.rs","line":2,"col":10,"rule":"wall-clock","message":"`std::env::var_os` makes behavior depend on ambient process state; read configuration at entry points and pass it down"},{"path":"crates/bench/src/campaigns.rs","line":2,"col":22,"rule":"env-keys","message":"env-var name `UA_DI_QSDC_UPDATE_FIXTURES` spelled as a literal; use the constant in `protocol::env_keys` so typos cannot fork the configuration surface"}],"waived":[]}"#
    );
}

#[test]
fn waiver_hygiene_flags_bare_and_unknown_rule_waivers() {
    let json = lint(
        &[(
            "crates/protocol/src/engine/w.rs",
            include_str!("inputs/waivers.rs"),
        )],
        FIXTURES,
    );
    assert_eq!(
        json,
        r#"{"files_scanned":1,"diagnostics":[{"path":"crates/protocol/src/engine/w.rs","line":2,"col":5,"rule":"waiver-hygiene","message":"bare waiver for [\"wall-clock\"] with no reason; write `// detlint: allow(wall-clock): <why this site is exempt>`"},{"path":"crates/protocol/src/engine/w.rs","line":7,"col":5,"rule":"waiver-hygiene","message":"waiver names unknown rule(s) [\"no-such-rule\"]; valid rules: wall-clock, unordered-iter, unsafe-audit, hot-path-alloc, internal-deprecated, wire-fixture, env-keys, waiver-hygiene"}],"waived":[]}"#
    );
}

#[test]
fn lexer_decoys_in_strings_comments_and_lifetimes_stay_inert() {
    // Nested block comments, plain and raw strings, char literals and
    // lifetimes all contain decoy "violations" — none may fire.
    let json = lint(
        &[(
            "crates/protocol/src/engine/t.rs",
            include_str!("inputs/tricky.rs"),
        )],
        FIXTURES,
    );
    assert_eq!(json, r#"{"files_scanned":1,"diagnostics":[],"waived":[]}"#);
}

#[test]
fn a_compliant_file_is_clean() {
    let json = lint(
        &[(
            "crates/protocol/src/engine/c.rs",
            include_str!("inputs/clean.rs"),
        )],
        FIXTURES,
    );
    assert_eq!(json, r#"{"files_scanned":1,"diagnostics":[],"waived":[]}"#);
}
