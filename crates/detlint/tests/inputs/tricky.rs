//! Decoys only: every "violation" below is inert text, never code.

/* outer /* nested SystemTime::now() */ still one comment, HashMap and all */
pub fn describe() -> &'static str {
    "SystemTime::now() and HashMap are just words inside a string"
}

pub fn raw() -> &'static str {
    r#"std::env::var("UA_DI_QSDC_X") stays inert inside a raw string"#
}

pub fn tick() -> char {
    't'
}

pub fn lifetime_of<'now>(x: &'now u64) -> &'now u64 {
    x
}
