pub struct Kernel {
    scratch: Vec<f64>,
}

impl Kernel {
    // detlint: allow(hot-path-alloc): compile-time constructor; apply() reuses scratch
    pub fn compile(dim: usize) -> Kernel {
        Kernel {
            scratch: vec![0.0; dim],
        }
    }

    pub fn apply(&mut self, amp: &[f64]) -> Vec<f64> {
        amp.to_vec()
    }
}
