use std::time::{Instant, SystemTime};

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

pub fn lease_deadline() -> SystemTime {
    // detlint: allow(wall-clock): leases are wall time by design
    SystemTime::now()
}

pub fn elapsed() {
    let _ = Instant::now();
}

pub fn knob() -> Option<String> {
    std::env::var("KNOB").ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
