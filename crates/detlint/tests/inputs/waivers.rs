pub fn lease() -> u64 {
    // detlint: allow(wall-clock)
    now_ms()
}

pub fn fold() -> u64 {
    // detlint: allow(no-such-rule): believed fine
    1
}
