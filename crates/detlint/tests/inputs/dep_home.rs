#[deprecated(note = "use sample_compiled")]
pub fn sample_legacy(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
}

pub fn still_here(x: u64) -> u64 {
    sample_legacy(x)
}
