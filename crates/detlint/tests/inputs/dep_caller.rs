pub fn draw(x: u64) -> u64 {
    sample_legacy(x)
}
