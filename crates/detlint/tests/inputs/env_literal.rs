pub fn fixtures_enabled() -> bool {
    std::env::var_os("UA_DI_QSDC_UPDATE_FIXTURES").is_some()
}
