use std::collections::BTreeMap;

pub fn fold(keys: &[String]) -> BTreeMap<String, usize> {
    keys.iter().cloned().zip(0..).collect()
}
