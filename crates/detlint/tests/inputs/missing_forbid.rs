//! A crate root that forgot its unsafe policy.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
