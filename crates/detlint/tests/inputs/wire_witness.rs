pub fn witness() {
    let _plan: Option<ShardPlan> = None;
}
