use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    pub master_seed: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgottenReceipt {
    pub trials: u64,
}

#[derive(Debug, Clone)]
pub struct NotWire {
    pub scratch: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Internal {
    pub x: u64,
}
