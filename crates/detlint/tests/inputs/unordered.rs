use std::collections::{HashMap, HashSet};

pub fn fold(keys: &[String]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    let mut seen = HashSet::new();
    for (i, k) in keys.iter().enumerate() {
        if seen.insert(k.clone()) {
            map.insert(k.clone(), i);
        }
    }
    map
}
