//! The linter's reason to exist: the real workspace must lint clean.
//!
//! This is the same run CI performs with `cargo run -p detlint`, executed
//! in-process so `cargo test` alone already guards the invariants: zero
//! unwaived findings, and every waiver carrying a written reason.

use detlint::{Config, Linter};
use std::path::Path;

#[test]
fn the_workspace_has_zero_unwaived_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = Linter::new(Config::workspace())
        .lint_workspace(&root)
        .expect("workspace scan succeeds");

    // A meaningful scan, not a silently-empty walk.
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "unwaived determinism findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Waivers are part of the contract too: each one documents *why* its
    // site is exempt (waiver-hygiene flags bare ones as findings above,
    // so this is a belt-and-suspenders check on the report itself).
    for waiver in &report.waived {
        assert!(
            !waiver.reason.trim().is_empty(),
            "waiver without a reason at {}:{}",
            waiver.diagnostic.path,
            waiver.diagnostic.line
        );
    }
}
