//! Impersonation attack.
//!
//! Eve pretends to be Alice (to inject a message) or Bob (to receive one) without knowing the
//! corresponding pre-shared identity. All she can do is apply uniformly random Pauli operators
//! on the identity block, which the legitimate peer detects with probability `1 − (1/4)^l`
//! (paper Section III-A). This module runs that attack end-to-end against the real protocol
//! and reports the measured detection rate next to the analytic value.

use protocol::auth::impersonation_detection_probability;
use protocol::config::SessionConfig;
use protocol::engine::{Adversary, Parallelism, Scenario, SessionEngine};
use protocol::error::ProtocolError;
use protocol::identity::IdentityPair;
use protocol::session::Impersonation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated results of repeated impersonation attempts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpersonationSummary {
    /// Who Eve impersonated.
    pub target: Impersonation,
    /// Identity length `l` in qubits.
    pub identity_qubits: usize,
    /// Number of attempted sessions.
    pub trials: usize,
    /// Sessions in which the legitimate party detected Eve (protocol aborted at the
    /// authentication stage protecting against this impersonation).
    pub detected: usize,
    /// Sessions in which the message was delivered to / accepted from Eve.
    pub undetected_deliveries: usize,
    /// Measured detection rate.
    pub detection_rate: f64,
    /// The analytic detection probability `1 − (1/4)^l`.
    pub analytic_probability: f64,
}

impl ImpersonationSummary {
    /// Absolute gap between the measured and analytic detection rate.
    pub fn deviation(&self) -> f64 {
        (self.detection_rate - self.analytic_probability).abs()
    }
}

impl fmt::Display for ImpersonationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (l={}): detected {}/{} = {:.4} (analytic {:.4})",
            self.target,
            self.identity_qubits,
            self.detected,
            self.trials,
            self.detection_rate,
            self.analytic_probability
        )
    }
}

/// Runs `trials` impersonation attempts against the full protocol and summarises detection.
///
/// The relevant detection stage depends on the target: when Eve impersonates Bob, the real
/// Alice catches her at the Bob-authentication step; when Eve impersonates Alice, the real Bob
/// catches her at the Alice-authentication step.
///
/// Trials fan out across all available cores ([`Parallelism::Auto`]) unless the
/// [`Parallelism::ENV_VAR`] environment variable selects another policy; the engine's
/// per-trial RNG streams keep the summary bit-identical under every policy.
///
/// # Errors
///
/// Propagates configuration errors from the underlying sessions.
///
/// # Panics
///
/// Panics when `target` is [`Impersonation::None`], or when the
/// [`Parallelism::ENV_VAR`] environment variable is set to an unparsable
/// value (a misconfigured override fails loudly rather than silently running
/// serial).
pub fn run_impersonation_trials<R: Rng>(
    config: &SessionConfig,
    identities: &IdentityPair,
    target: Impersonation,
    trials: usize,
    rng: &mut R,
) -> Result<ImpersonationSummary, ProtocolError> {
    assert!(
        target != Impersonation::None,
        "run_impersonation_trials needs an actual impersonation target"
    );
    let adversary = Adversary::from_impersonation(target);
    let detection_stage = adversary
        .detection_stage()
        .expect("impersonation adversaries have a detection stage");
    let scenario = Scenario::new(config.clone(), identities.clone())
        .with_label("impersonation")
        .with_adversary(adversary);
    let summary = SessionEngine::new(rng.next_u64())
        .with_parallelism(Parallelism::from_env().unwrap_or(Parallelism::Auto))
        .run_trials(&scenario, trials)?;
    let detected = summary.aborted_at(detection_stage);
    let l = identities.qubit_len();
    Ok(ImpersonationSummary {
        target,
        identity_qubits: l,
        trials,
        detected,
        undetected_deliveries: summary.delivered,
        detection_rate: if trials == 0 {
            0.0
        } else {
            detected as f64 / trials as f64
        },
        analytic_probability: impersonation_detection_probability(l),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn impersonating_bob_detection_rate_matches_analytic_value() {
        let mut r = rng(101);
        let identities = IdentityPair::generate(2, &mut r);
        let summary =
            run_impersonation_trials(&config(), &identities, Impersonation::OfBob, 120, &mut r)
                .unwrap();
        // l = 2 → analytic detection probability 0.9375.
        assert!(summary.deviation() < 0.08, "{summary}");
        assert_eq!(summary.trials, 120);
        assert_eq!(summary.identity_qubits, 2);
        assert!(summary.detection_rate > 0.8);
    }

    #[test]
    fn impersonating_alice_detection_rate_matches_analytic_value() {
        let mut r = rng(102);
        let identities = IdentityPair::generate(2, &mut r);
        let summary =
            run_impersonation_trials(&config(), &identities, Impersonation::OfAlice, 120, &mut r)
                .unwrap();
        assert!(summary.deviation() < 0.08, "{summary}");
        assert!(summary.to_string().contains("Alice"));
    }

    #[test]
    fn longer_identities_are_detected_essentially_always() {
        let mut r = rng(103);
        let identities = IdentityPair::generate(8, &mut r);
        let summary =
            run_impersonation_trials(&config(), &identities, Impersonation::OfBob, 60, &mut r)
                .unwrap();
        assert!(summary.detected >= 59, "{summary}");
        assert_eq!(summary.undetected_deliveries, 0);
        assert!(summary.analytic_probability > 0.99998);
    }

    #[test]
    fn single_qubit_identity_lets_some_attempts_slip_through() {
        // l = 1 → detection probability only 0.75; with 200 trials we expect ~50 successes.
        let mut r = rng(104);
        let identities = IdentityPair::generate(1, &mut r);
        let summary =
            run_impersonation_trials(&config(), &identities, Impersonation::OfBob, 200, &mut r)
                .unwrap();
        assert!(summary.undetected_deliveries > 20, "{summary}");
        assert!((summary.detection_rate - 0.75).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "actual impersonation target")]
    fn none_target_is_rejected() {
        let mut r = rng(105);
        let identities = IdentityPair::generate(2, &mut r);
        let _ = run_impersonation_trials(&config(), &identities, Impersonation::None, 1, &mut r);
    }
}
