//! Entangle-and-measure attack (paper Section III-D).
//!
//! The tap implementation moved to [`qchannel::taps::entangle_measure`] so the
//! protocol's `SessionEngine` can name it without a dependency cycle; this
//! module re-exports it under the old path and keeps the protocol-level
//! detection tests.

pub use qchannel::taps::entangle_measure::EntangleMeasureAttack;

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::di_check::{run_di_check, DiCheckRound};
    use qchannel::epr::EprPair;
    use qchannel::quantum::ChannelTap;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(88)
    }

    #[test]
    fn chsh_under_full_attack_cannot_violate_classical_bound() {
        let mut r = rng();
        let mut eve = EntangleMeasureAttack::full();
        let mut pairs: Vec<EprPair> = (0..500).map(|_| EprPair::ideal()).collect();
        for pair in &mut pairs {
            eve.on_transmit(pair, &mut r);
        }
        let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut r);
        let s = report.chsh.unwrap();
        assert!(
            s <= 2.0 + 0.25,
            "full entangle-and-measure caps CHSH at 2, got {s}"
        );
        assert_eq!(eve.ancillas_measured(), 500);
        assert_eq!(eve.ancilla_bits().len(), 500);
    }

    #[test]
    fn chsh_degrades_monotonically_with_attack_strength() {
        let mut r = rng();
        let mut previous = f64::INFINITY;
        for strength in [0.0, 0.4, 0.8, 1.0] {
            let mut eve = EntangleMeasureAttack::with_strength(strength);
            let mut pairs: Vec<EprPair> = (0..600).map(|_| EprPair::ideal()).collect();
            for pair in &mut pairs {
                eve.on_transmit(pair, &mut r);
            }
            let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut r);
            let s = report.chsh.unwrap();
            assert!(
                s <= previous + 0.3,
                "stronger coupling must not increase CHSH (s={s} at strength {strength}, prev={previous})"
            );
            previous = s;
        }
        assert!(
            previous < 2.3,
            "full-strength attack ends near the classical bound"
        );
    }
}
