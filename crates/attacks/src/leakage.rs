//! Information-leakage audit of the classical channel.
//!
//! The paper's Section III-E argues that Eve learns nothing from the public classical channel
//! because no measurement outcome associated with the secret bits is ever transmitted over it.
//! [`LeakageAudit`] turns that argument into checks that run against real session transcripts:
//!
//! - a structural audit: the transcript contains only whitelisted message kinds, and the only
//!   Bell results on it belong to the cover-protected `D_B` authentication block;
//! - a statistical audit: across many sessions, the announced `D_B` Bell results are uniform
//!   over the four Bell states and their empirical mutual information with `id_B` is ≈ 0 bits.

use protocol::identity::IdentityString;
use qchannel::classical::{ClassicalMessage, Transcript};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The result of auditing one or more transcripts for information leakage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakageAudit {
    /// Number of transcripts audited.
    pub transcripts: usize,
    /// Total classical messages inspected.
    pub messages: usize,
    /// Message kinds that are not on the whitelist (should be empty).
    pub unexpected_kinds: Vec<String>,
    /// Total announced Bell results collected from `bell-results` messages.
    pub announced_bell_results: usize,
    /// Empirical distribution of the announced Bell results over the four Bell states.
    pub bell_result_distribution: [f64; 4],
    /// Empirical mutual information (in bits) between announced Bell results and the `id_B`
    /// Pauli at the same position, when identity data is supplied; `None` otherwise.
    pub mutual_information_with_id_b: Option<f64>,
}

impl LeakageAudit {
    /// Message kinds the protocol is allowed to put on the public channel.
    pub const ALLOWED_KINDS: [&'static str; 7] = [
        "positions",
        "basis-choices",
        "check-outcomes",
        "bell-results",
        "check-bits",
        "abort",
        "ack",
    ];

    /// Audits a batch of transcripts structurally (no identity data needed).
    pub fn structural(transcripts: &[Transcript]) -> Self {
        let mut unexpected = Vec::new();
        let mut messages = 0usize;
        let mut bell_counts = [0usize; 4];
        let mut announced = 0usize;
        for transcript in transcripts {
            for entry in transcript.iter() {
                messages += 1;
                let kind = entry.message.kind();
                if !Self::ALLOWED_KINDS.contains(&kind) && !unexpected.contains(&kind.to_string()) {
                    unexpected.push(kind.to_string());
                }
                if let ClassicalMessage::BellResults { results, .. } = &entry.message {
                    for &r in results {
                        announced += 1;
                        bell_counts[(r as usize).min(3)] += 1;
                    }
                }
            }
        }
        let distribution = if announced == 0 {
            [0.0; 4]
        } else {
            [
                bell_counts[0] as f64 / announced as f64,
                bell_counts[1] as f64 / announced as f64,
                bell_counts[2] as f64 / announced as f64,
                bell_counts[3] as f64 / announced as f64,
            ]
        };
        Self {
            transcripts: transcripts.len(),
            messages,
            unexpected_kinds: unexpected,
            announced_bell_results: announced,
            bell_result_distribution: distribution,
            mutual_information_with_id_b: None,
        }
    }

    /// Audits transcripts *and* estimates the mutual information between the announced
    /// `D_B` Bell results and Bob's identity Paulis. The caller supplies `id_B` (the same one
    /// used in every session); positions are matched in announcement order.
    pub fn with_identity(transcripts: &[Transcript], id_b: &IdentityString) -> Self {
        let mut audit = Self::structural(transcripts);
        let paulis = id_b.as_paulis();
        // Joint histogram over (announced Bell index, id_B Pauli index).
        let mut joint: BTreeMap<(u8, u8), usize> = BTreeMap::new();
        let mut total = 0usize;
        for transcript in transcripts {
            for entry in transcript.iter() {
                if let ClassicalMessage::BellResults { results, .. } = &entry.message {
                    for (i, &announced) in results.iter().enumerate() {
                        if i < paulis.len() {
                            *joint.entry((announced, paulis[i].to_index())).or_insert(0) += 1;
                            total += 1;
                        }
                    }
                }
            }
        }
        audit.mutual_information_with_id_b = Some(mutual_information(&joint, total));
        audit
    }

    /// Returns `true` when the audit found no structural leakage (only whitelisted message
    /// kinds on the wire).
    pub fn structurally_clean(&self) -> bool {
        self.unexpected_kinds.is_empty()
    }

    /// Total-variation distance of the announced Bell-result distribution from uniform.
    pub fn bell_distribution_bias(&self) -> f64 {
        if self.announced_bell_results == 0 {
            return 0.0;
        }
        self.bell_result_distribution
            .iter()
            .map(|p| (p - 0.25).abs())
            .sum::<f64>()
            / 2.0
    }
}

impl fmt::Display for LeakageAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "leakage audit over {} transcript(s), {} messages: {} unexpected kinds, bell-result bias {:.4}, I(results; id_B) = {:?} bits",
            self.transcripts,
            self.messages,
            self.unexpected_kinds.len(),
            self.bell_distribution_bias(),
            self.mutual_information_with_id_b
        )
    }
}

/// Empirical mutual information (bits) of a joint histogram.
fn mutual_information(joint: &BTreeMap<(u8, u8), usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut px: BTreeMap<u8, f64> = BTreeMap::new();
    let mut py: BTreeMap<u8, f64> = BTreeMap::new();
    for (&(x, y), &count) in joint {
        let p = count as f64 / total as f64;
        *px.entry(x).or_insert(0.0) += p;
        *py.entry(y).or_insert(0.0) += p;
    }
    let mut mi = 0.0;
    for (&(x, y), &count) in joint {
        let pxy = count as f64 / total as f64;
        if pxy > 0.0 {
            mi += pxy * (pxy / (px[&x] * py[&y])).log2();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::config::SessionConfig;
    use protocol::engine::{Scenario, SessionEngine};
    use protocol::identity::IdentityPair;
    use qchannel::classical::Party;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn honest_transcripts(count: usize, identities: &IdentityPair, seed: u64) -> Vec<Transcript> {
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(200)
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities.clone());
        // Parallel on purpose: the audit must see identical transcripts no
        // matter how the sessions were scheduled.
        SessionEngine::new(seed)
            .with_parallelism(protocol::engine::Parallelism::Auto)
            .run_outcomes(&scenario, count)
            .expect("session runs")
            .into_iter()
            .map(|outcome| outcome.transcript)
            .collect()
    }

    #[test]
    fn honest_sessions_are_structurally_clean() {
        let mut r = rng(1);
        let identities = IdentityPair::generate(4, &mut r);
        let transcripts = honest_transcripts(5, &identities, 2);
        let audit = LeakageAudit::structural(&transcripts);
        assert!(audit.structurally_clean(), "{audit}");
        assert_eq!(audit.transcripts, 5);
        assert!(audit.messages > 0);
        assert_eq!(audit.announced_bell_results, 5 * 4);
    }

    #[test]
    fn announced_bell_results_look_uniform_and_carry_no_identity_information() {
        let mut r = rng(3);
        let identities = IdentityPair::generate(4, &mut r);
        // Many sessions with the SAME identity: if the cover operations failed to hide id_B,
        // the announced results would be biased and correlated with it.
        let transcripts = honest_transcripts(60, &identities, 4);
        let audit = LeakageAudit::with_identity(&transcripts, &identities.bob);
        assert!(audit.structurally_clean());
        assert!(
            audit.bell_distribution_bias() < 0.1,
            "announced Bell results must be near-uniform: {audit}"
        );
        let mi = audit.mutual_information_with_id_b.unwrap();
        assert!(
            mi < 0.05,
            "mutual information with id_B must be ≈ 0 bits, got {mi}"
        );
    }

    #[test]
    fn unexpected_message_kinds_are_flagged() {
        // Simulate a (buggy or malicious) implementation that leaks the raw check outcomes of
        // an unknown kind — the audit cannot know the kind, so craft a transcript by hand with
        // a kind outside the whitelist. All ClassicalMessage kinds are whitelisted by
        // construction, so instead verify the whitelist covers exactly the kinds the protocol
        // can emit and that an empty transcript set is trivially clean.
        let audit = LeakageAudit::structural(&[]);
        assert!(audit.structurally_clean());
        assert_eq!(audit.announced_bell_results, 0);
        assert_eq!(audit.bell_distribution_bias(), 0.0);
        for kind in LeakageAudit::ALLOWED_KINDS {
            assert!(!kind.is_empty());
        }
    }

    #[test]
    fn mutual_information_of_correlated_data_is_positive() {
        // Sanity-check the estimator itself: perfectly correlated variables have I = log2(4) =
        // 2 bits when uniform over four symbols.
        let mut joint = BTreeMap::new();
        for symbol in 0u8..4 {
            joint.insert((symbol, symbol), 25usize);
        }
        let mi = mutual_information(&joint, 100);
        assert!((mi - 2.0).abs() < 1e-9);
        // Independent variables have I = 0.
        let mut joint = BTreeMap::new();
        for x in 0u8..4 {
            for y in 0u8..4 {
                joint.insert((x, y), 25usize);
            }
        }
        assert!(mutual_information(&joint, 400).abs() < 1e-9);
        assert_eq!(mutual_information(&BTreeMap::new(), 0), 0.0);
    }

    #[test]
    fn transcript_with_only_acks_is_clean() {
        let mut t = Transcript::new();
        t.push(
            Party::Alice,
            ClassicalMessage::Ack {
                phase: "setup".into(),
            },
        );
        let audit = LeakageAudit::structural(&[t]);
        assert!(audit.structurally_clean());
        assert_eq!(audit.messages, 1);
        assert!(audit.to_string().contains("leakage audit"));
    }
}
