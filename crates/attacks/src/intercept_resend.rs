//! Intercept-and-resend attack (paper Section III-B).
//!
//! The tap implementation moved to [`qchannel::taps::intercept_resend`] so the
//! protocol's `SessionEngine` can name it without a dependency cycle; this
//! module re-exports it under the old path and keeps the protocol-level
//! detection test.

pub use qchannel::taps::intercept_resend::{InterceptBasis, InterceptResendAttack};

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::di_check::{run_di_check, DiCheckRound};
    use qchannel::epr::EprPair;
    use qchannel::quantum::ChannelTap;
    use rand::SeedableRng;

    #[test]
    fn chsh_drops_below_classical_bound_under_interception() {
        let mut r = rand::rngs::StdRng::seed_from_u64(55);
        for basis in [
            InterceptBasis::Computational,
            InterceptBasis::Hadamard,
            InterceptBasis::Equatorial(1.1),
            InterceptBasis::RandomPerQubit,
        ] {
            let mut eve = InterceptResendAttack::new(basis);
            let mut pairs: Vec<EprPair> = (0..500).map(|_| EprPair::ideal()).collect();
            for pair in &mut pairs {
                eve.on_transmit(pair, &mut r);
            }
            let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut r);
            let s = report.chsh.unwrap();
            assert!(
                s <= 2.0 + 0.25,
                "intercept-and-resend in {basis} must cap CHSH at ~2, got {s}"
            );
        }
    }
}
