//! Man-in-the-middle attack (paper Section III-C).
//!
//! The tap implementation moved to [`qchannel::taps::mitm`] so the protocol's
//! `SessionEngine` can name it without a dependency cycle; this module
//! re-exports it under the old path and keeps the protocol-level detection
//! test.

pub use qchannel::taps::mitm::{ManInTheMiddleAttack, SubstituteState};

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::di_check::{run_di_check, DiCheckRound};
    use qchannel::epr::EprPair;
    use qchannel::quantum::ChannelTap;
    use rand::SeedableRng;

    #[test]
    fn chsh_under_mitm_is_classical() {
        let mut r = rand::rngs::StdRng::seed_from_u64(66);
        let mut eve = ManInTheMiddleAttack::random_computational();
        let mut pairs: Vec<EprPair> = (0..500).map(|_| EprPair::ideal()).collect();
        for pair in &mut pairs {
            eve.on_transmit(pair, &mut r);
        }
        let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut r);
        let s = report.chsh.unwrap();
        assert!(s <= 2.0 + 0.25, "MITM substitution caps CHSH at 2, got {s}");
        assert!(!report.passed || s <= 2.25);
        assert_eq!(eve.stolen_qubits(), 500);
    }
}
