//! Attack harness: run any channel-tap attack against the full protocol, many times, and
//! summarise what happened.

use protocol::config::SessionConfig;
use protocol::error::ProtocolError;
use protocol::identity::IdentityPair;
use protocol::message::SecretMessage;
use protocol::session::{run_session_full, AbortStage, Impersonation, SessionOutcome};
use qchannel::quantum::ChannelTap;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated statistics of repeated attacked sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Name of the attack (from [`ChannelTap::name`]).
    pub attack: String,
    /// Number of sessions attempted.
    pub trials: usize,
    /// Sessions in which the message was delivered despite the attack.
    pub delivered: usize,
    /// Aborts at the first DI check.
    pub aborted_di_check1: usize,
    /// Aborts at Bob authentication.
    pub aborted_bob_auth: usize,
    /// Aborts at Alice authentication.
    pub aborted_alice_auth: usize,
    /// Aborts at the second DI check.
    pub aborted_di_check2: usize,
    /// Aborts at the final integrity check.
    pub aborted_integrity: usize,
    /// Mean CHSH value of the first check (over sessions where it was estimated).
    pub mean_chsh_round1: Option<f64>,
    /// Mean CHSH value of the second check (over sessions where it was estimated).
    pub mean_chsh_round2: Option<f64>,
}

impl AttackSummary {
    /// Total aborts across all stages.
    pub fn total_aborts(&self) -> usize {
        self.aborted_di_check1
            + self.aborted_bob_auth
            + self.aborted_alice_auth
            + self.aborted_di_check2
            + self.aborted_integrity
    }

    /// Fraction of sessions in which the attack was detected (any abort).
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.trials as f64
        }
    }
}

impl fmt::Display for AttackSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} trials, {} delivered, detection rate {:.3} (S1 {:?}, S2 {:?})",
            self.attack,
            self.trials,
            self.delivered,
            self.detection_rate(),
            self.mean_chsh_round1,
            self.mean_chsh_round2
        )
    }
}

/// Runs `trials` full-protocol sessions, each against a fresh attack instance produced by
/// `make_attack`, and aggregates the outcomes.
///
/// A fresh attack per session keeps per-session state (captured bits, counters) independent,
/// matching how an adversary would attack separate protocol runs.
///
/// # Errors
///
/// Propagates configuration errors from the underlying sessions.
pub fn run_attack_trials<R, T, F>(
    config: &SessionConfig,
    identities: &IdentityPair,
    mut make_attack: F,
    trials: usize,
    rng: &mut R,
) -> Result<AttackSummary, ProtocolError>
where
    R: Rng,
    T: ChannelTap,
    F: FnMut() -> T,
{
    let mut summary = AttackSummary {
        attack: String::new(),
        trials,
        delivered: 0,
        aborted_di_check1: 0,
        aborted_bob_auth: 0,
        aborted_alice_auth: 0,
        aborted_di_check2: 0,
        aborted_integrity: 0,
        mean_chsh_round1: None,
        mean_chsh_round2: None,
    };
    let mut chsh1 = Vec::new();
    let mut chsh2 = Vec::new();
    for _ in 0..trials {
        let mut attack = make_attack();
        if summary.attack.is_empty() {
            summary.attack = attack.name().to_string();
        }
        let message = SecretMessage::random(config.message_bits(), rng);
        let outcome: SessionOutcome = run_session_full(
            config,
            identities,
            &message,
            Impersonation::None,
            &mut attack,
            rng,
        )?;
        if outcome.is_delivered() {
            summary.delivered += 1;
        }
        if outcome.aborted_at(AbortStage::DiCheck1) {
            summary.aborted_di_check1 += 1;
        }
        if outcome.aborted_at(AbortStage::BobAuthentication) {
            summary.aborted_bob_auth += 1;
        }
        if outcome.aborted_at(AbortStage::AliceAuthentication) {
            summary.aborted_alice_auth += 1;
        }
        if outcome.aborted_at(AbortStage::DiCheck2) {
            summary.aborted_di_check2 += 1;
        }
        if outcome.aborted_at(AbortStage::IntegrityCheck) {
            summary.aborted_integrity += 1;
        }
        if let Some(report) = &outcome.di_check_round1 {
            if let Some(s) = report.chsh {
                chsh1.push(s);
            }
        }
        if let Some(report) = &outcome.di_check_round2 {
            if let Some(s) = report.chsh {
                chsh2.push(s);
            }
        }
    }
    summary.mean_chsh_round1 = mean(&chsh1);
    summary.mean_chsh_round2 = mean(&chsh2);
    Ok(summary)
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entangle_measure::EntangleMeasureAttack;
    use crate::intercept_resend::InterceptResendAttack;
    use crate::mitm::ManInTheMiddleAttack;
    use qchannel::quantum::NoTap;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(200)
            .build()
            .unwrap()
    }

    #[test]
    fn honest_channel_delivers_every_time() {
        let mut r = rng(1);
        let identities = IdentityPair::generate(3, &mut r);
        let summary =
            run_attack_trials(&config(), &identities, || NoTap, 6, &mut r).unwrap();
        assert_eq!(summary.delivered, 6, "{summary}");
        assert_eq!(summary.total_aborts(), 0);
        assert!(summary.mean_chsh_round1.unwrap() > 2.3);
        assert!(summary.mean_chsh_round2.unwrap() > 2.3);
    }

    #[test]
    fn intercept_resend_is_always_detected() {
        let mut r = rng(2);
        let identities = IdentityPair::generate(3, &mut r);
        let summary = run_attack_trials(
            &config(),
            &identities,
            InterceptResendAttack::computational,
            6,
            &mut r,
        )
        .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!((summary.detection_rate() - 1.0).abs() < 1e-9);
        // Round 1 happens before transmission, so it still looks quantum…
        assert!(summary.mean_chsh_round1.unwrap() > 2.3);
        // …but once the qubits have flown through Eve the violation is gone.
        if let Some(s2) = summary.mean_chsh_round2 {
            assert!(s2 <= 2.1, "S2 must collapse under interception, got {s2}");
        }
        assert_eq!(summary.attack, "intercept-and-resend");
    }

    #[test]
    fn mitm_is_always_detected() {
        let mut r = rng(3);
        let identities = IdentityPair::generate(3, &mut r);
        let summary = run_attack_trials(
            &config(),
            &identities,
            ManInTheMiddleAttack::random_computational,
            6,
            &mut r,
        )
        .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!(summary.detection_rate() > 0.99);
    }

    #[test]
    fn entangle_measure_is_always_detected() {
        let mut r = rng(4);
        let identities = IdentityPair::generate(3, &mut r);
        let summary = run_attack_trials(
            &config(),
            &identities,
            EntangleMeasureAttack::full,
            6,
            &mut r,
        )
        .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!(summary.detection_rate() > 0.99);
    }

    #[test]
    fn summary_display_and_empty_mean() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        let mut r = rng(5);
        let identities = IdentityPair::generate(2, &mut r);
        let summary = run_attack_trials(&config(), &identities, || NoTap, 1, &mut r).unwrap();
        assert!(summary.to_string().contains("trials"));
    }
}
