//! Attack harness: a thin layer over [`protocol::engine::SessionEngine`].
//!
//! [`run_adversary_trials`] is the entry point — it fans trials across
//! worker threads under a caller-chosen [`Parallelism`] policy and reports
//! both the [`AttackSummary`] and the executor's utilisation. New code can
//! equally build a [`protocol::engine::Scenario`] with the appropriate
//! [`protocol::engine::Adversary`] and call
//! [`protocol::engine::SessionEngine::run_trials`] directly; the engine's
//! [`protocol::engine::TrialSummary`] supersedes [`AttackSummary`] and adds
//! deterministic, batch-stable replay (and, via
//! [`protocol::engine::shard`], multi-process sharding).

use protocol::config::SessionConfig;
use protocol::engine::{
    Adversary, ExecutorStats, Parallelism, Scenario, SessionEngine, TrialSummary,
};
use protocol::error::ProtocolError;
use protocol::identity::IdentityPair;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated statistics of repeated attacked sessions (legacy shape; see
/// [`TrialSummary`] for the engine-native equivalent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Name of the attack (the [`Adversary`]'s display name).
    pub attack: String,
    /// Number of sessions attempted.
    pub trials: usize,
    /// Sessions in which the message was delivered despite the attack.
    pub delivered: usize,
    /// Aborts at the first DI check.
    pub aborted_di_check1: usize,
    /// Aborts at Bob authentication.
    pub aborted_bob_auth: usize,
    /// Aborts at Alice authentication.
    pub aborted_alice_auth: usize,
    /// Aborts at the second DI check.
    pub aborted_di_check2: usize,
    /// Aborts at the final integrity check.
    pub aborted_integrity: usize,
    /// Mean CHSH value of the first check (over sessions where it was estimated).
    pub mean_chsh_round1: Option<f64>,
    /// Mean CHSH value of the second check (over sessions where it was estimated).
    pub mean_chsh_round2: Option<f64>,
}

impl AttackSummary {
    /// Total aborts across all stages.
    pub fn total_aborts(&self) -> usize {
        self.aborted_di_check1
            + self.aborted_bob_auth
            + self.aborted_alice_auth
            + self.aborted_di_check2
            + self.aborted_integrity
    }

    /// Fraction of sessions in which the attack was detected (any abort).
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.trials as f64
        }
    }
}

impl From<TrialSummary> for AttackSummary {
    fn from(summary: TrialSummary) -> Self {
        Self {
            attack: summary.adversary,
            trials: summary.trials,
            delivered: summary.delivered,
            aborted_di_check1: summary.aborted_di_check1,
            aborted_bob_auth: summary.aborted_bob_auth,
            aborted_alice_auth: summary.aborted_alice_auth,
            aborted_di_check2: summary.aborted_di_check2,
            aborted_integrity: summary.aborted_integrity,
            mean_chsh_round1: summary.mean_chsh_round1,
            mean_chsh_round2: summary.mean_chsh_round2,
        }
    }
}

impl fmt::Display for AttackSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} trials, {} delivered, detection rate {:.3} (S1 {:?}, S2 {:?})",
            self.attack,
            self.trials,
            self.delivered,
            self.detection_rate(),
            self.mean_chsh_round1,
            self.mean_chsh_round2
        )
    }
}

/// Runs `trials` sessions of one adversary through the parallel engine and reports the legacy
/// [`AttackSummary`] shape plus the [`ExecutorStats`] of the fan-out.
///
/// Trials are distributed across worker threads according to `parallelism`; the summary is
/// bit-identical under every policy because each trial draws from its own RNG stream derived
/// from `(master_seed, scenario fingerprint, trial index)`.
///
/// # Errors
///
/// Propagates configuration errors from the underlying sessions.
pub fn run_adversary_trials(
    config: &SessionConfig,
    identities: &IdentityPair,
    adversary: Adversary,
    trials: usize,
    master_seed: u64,
    parallelism: Parallelism,
) -> Result<(AttackSummary, ExecutorStats), ProtocolError> {
    let scenario = Scenario::new(config.clone(), identities.clone())
        .with_label("attack-trials")
        .with_adversary(adversary);
    let (summary, stats) = SessionEngine::new(master_seed)
        .with_parallelism(parallelism)
        .run_trials_with_stats(&scenario, trials)?;
    Ok((AttackSummary::from(summary), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::engine::{Adversary, Scenario};
    use qchannel::taps::{InterceptBasis, SubstituteState};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(200)
            .build()
            .unwrap()
    }

    fn scenario(identities: &IdentityPair, adversary: Adversary) -> Scenario {
        Scenario::new(config(), identities.clone()).with_adversary(adversary)
    }

    #[test]
    fn honest_channel_delivers_every_time() {
        let identities = IdentityPair::generate(3, &mut rng(1));
        let summary = SessionEngine::new(1)
            .run_trials(&scenario(&identities, Adversary::Honest), 6)
            .unwrap();
        assert_eq!(summary.delivered, 6, "{summary}");
        assert_eq!(summary.total_aborts(), 0);
        assert!(summary.mean_chsh_round1.unwrap() > 2.3);
        assert!(summary.mean_chsh_round2.unwrap() > 2.3);
    }

    #[test]
    fn intercept_resend_is_always_detected() {
        let identities = IdentityPair::generate(3, &mut rng(2));
        let summary = SessionEngine::new(2)
            .run_trials(
                &scenario(
                    &identities,
                    Adversary::InterceptResend(InterceptBasis::Computational),
                ),
                6,
            )
            .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!((summary.detection_rate() - 1.0).abs() < 1e-9);
        // Round 1 happens before transmission, so it still looks quantum…
        assert!(summary.mean_chsh_round1.unwrap() > 2.3);
        // …but once the qubits have flown through Eve the violation is gone.
        if let Some(s2) = summary.mean_chsh_round2 {
            assert!(s2 <= 2.1, "S2 must collapse under interception, got {s2}");
        }
        assert_eq!(summary.adversary, "intercept-and-resend");
    }

    #[test]
    fn mitm_is_always_detected() {
        let identities = IdentityPair::generate(3, &mut rng(3));
        let summary = SessionEngine::new(3)
            .run_trials(
                &scenario(
                    &identities,
                    Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
                ),
                6,
            )
            .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!(summary.detection_rate() > 0.99);
    }

    #[test]
    fn entangle_measure_is_always_detected() {
        let identities = IdentityPair::generate(3, &mut rng(4));
        let summary = SessionEngine::new(4)
            .run_trials(
                &scenario(&identities, Adversary::EntangleMeasure { strength: 1.0 }),
                6,
            )
            .unwrap();
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!(summary.detection_rate() > 0.99);
    }

    #[test]
    fn run_adversary_trials_is_parallel_and_deterministic() {
        let identities = IdentityPair::generate(3, &mut rng(9));
        let adversary = Adversary::InterceptResend(InterceptBasis::Computational);
        let (serial, serial_stats) = run_adversary_trials(
            &config(),
            &identities,
            adversary.clone(),
            6,
            99,
            Parallelism::Serial,
        )
        .unwrap();
        let (threaded, threaded_stats) = run_adversary_trials(
            &config(),
            &identities,
            adversary,
            6,
            99,
            Parallelism::Threads(3),
        )
        .unwrap();
        assert_eq!(serial, threaded, "parallelism must not change results");
        assert_eq!(serial.delivered, 0);
        assert_eq!(serial.attack, "intercept-and-resend");
        assert_eq!(serial_stats.workers, 1);
        assert!(threaded_stats.workers <= 3);
        assert_eq!(threaded_stats.tasks_per_worker.iter().sum::<usize>(), 6);
    }

    #[test]
    fn sharded_adversary_trials_merge_to_the_single_process_summary() {
        // The engine's shard pipeline applies unchanged to attacked
        // scenarios: split, execute shards on independent engines, merge —
        // byte-identical to the whole run.
        use protocol::engine::{merge_shard_results, ShardOutput};
        let identities = IdentityPair::generate(3, &mut rng(6));
        let scenario = scenario(
            &identities,
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
        );
        let engine = SessionEngine::new(31);
        let whole = engine.run_trials(&scenario, 5).unwrap();
        let results = engine
            .plan(&scenario, 5)
            .split_into(3)
            .iter()
            .map(|plan| {
                SessionEngine::new(0)
                    .execute_shard(plan, ShardOutput::Summary)
                    .unwrap()
            })
            .collect::<Vec<_>>();
        let merged = merge_shard_results(results)
            .unwrap()
            .into_summary()
            .unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.delivered, 0, "{merged}");
    }
}
