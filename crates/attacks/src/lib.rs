//! # attacks — eavesdropper models for the UA-DI-QSDC reproduction
//!
//! Section III of the paper analyses five attack strategies; Section IV simulates them. This
//! crate implements each one as runnable code against the real protocol:
//!
//! - [`impersonation`] — Eve plays Alice or Bob without knowing the pre-shared identity;
//!   detection probability `1 − (1/4)^l`.
//! - [`intercept_resend`] — Eve measures the flying qubits in a basis of her choice and
//!   resends them; the second DI check sees `S ≤ 2`.
//! - [`mitm`] — Eve keeps the real qubits and forwards fresh uncorrelated ones; the second DI
//!   check sees `S ≤ 2`.
//! - [`entangle_measure`] — Eve entangles an ancilla with each flying qubit (CNOT) and
//!   measures it; monogamy of entanglement degrades the CHSH value below the threshold.
//! - [`leakage`] — an audit of the public classical transcript confirming that nothing
//!   correlated with the message or the identities is ever published.
//!
//! [`harness`] runs any [`qchannel::quantum::ChannelTap`] attack against the full protocol for
//! many trials and summarises detection statistics.
//!
//! ## Example
//!
//! ```rust
//! use attacks::prelude::*;
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let identities = IdentityPair::generate(4, &mut rng);
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(200).build()?;
//! let summary = run_attack_trials(
//!     &config,
//!     &identities,
//!     || InterceptResendAttack::computational(),
//!     5,
//!     &mut rng,
//! )?;
//! assert_eq!(summary.delivered, 0, "intercept-and-resend must never get a message through");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entangle_measure;
pub mod harness;
pub mod impersonation;
pub mod intercept_resend;
pub mod leakage;
pub mod mitm;

pub use entangle_measure::EntangleMeasureAttack;
pub use harness::{run_attack_trials, AttackSummary};
pub use impersonation::{run_impersonation_trials, ImpersonationSummary};
pub use intercept_resend::InterceptResendAttack;
pub use leakage::LeakageAudit;
pub use mitm::ManInTheMiddleAttack;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::entangle_measure::EntangleMeasureAttack;
    pub use crate::harness::{run_attack_trials, AttackSummary};
    pub use crate::impersonation::{run_impersonation_trials, ImpersonationSummary};
    pub use crate::intercept_resend::InterceptResendAttack;
    pub use crate::leakage::LeakageAudit;
    pub use crate::mitm::ManInTheMiddleAttack;
}
