//! # attacks — eavesdropper analyses for the UA-DI-QSDC reproduction
//!
//! Section III of the paper analyses five attack strategies; Section IV simulates them. The
//! channel-level tap implementations live in [`qchannel::taps`] (re-exported here under their
//! historical module paths); this crate layers the protocol-level analyses on top:
//!
//! - [`impersonation`] — Eve plays Alice or Bob without knowing the pre-shared identity;
//!   detection probability `1 − (1/4)^l`.
//! - [`intercept_resend`] / [`mitm`] / [`entangle_measure`] — the channel attacks; the second
//!   DI check sees `S ≤ 2` and the protocol aborts.
//! - [`leakage`] — an audit of the public classical transcript confirming that nothing
//!   correlated with the message or the identities is ever published.
//!
//! Attacked sessions are executed through [`protocol::engine::SessionEngine`]: pick an
//! [`protocol::engine::Adversary`], put it in a [`protocol::engine::Scenario`], and ask the
//! engine for trials ([`harness::run_adversary_trials`] wraps exactly that and reports the
//! legacy [`harness::AttackSummary`] shape).
//!
//! ## Example
//!
//! ```rust
//! use protocol::prelude::*;
//! use qchannel::taps::InterceptBasis;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let identities = IdentityPair::generate(4, &mut rng);
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(200).build()?;
//! let scenario = Scenario::new(config, identities)
//!     .with_adversary(Adversary::InterceptResend(InterceptBasis::Computational));
//! let summary = SessionEngine::new(1).run_trials(&scenario, 5)?;
//! assert_eq!(summary.delivered, 0, "intercept-and-resend must never get a message through");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entangle_measure;
pub mod harness;
pub mod impersonation;
pub mod intercept_resend;
pub mod leakage;
pub mod mitm;

pub use entangle_measure::EntangleMeasureAttack;
pub use harness::{run_adversary_trials, AttackSummary};
pub use impersonation::{run_impersonation_trials, ImpersonationSummary};
pub use intercept_resend::InterceptResendAttack;
pub use leakage::LeakageAudit;
pub use mitm::ManInTheMiddleAttack;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::entangle_measure::EntangleMeasureAttack;
    pub use crate::harness::{run_adversary_trials, AttackSummary};
    pub use crate::impersonation::{run_impersonation_trials, ImpersonationSummary};
    pub use crate::intercept_resend::InterceptResendAttack;
    pub use crate::leakage::LeakageAudit;
    pub use crate::mitm::ManInTheMiddleAttack;
}
