//! Bit-identity properties of the compiled channel kernels.
//!
//! [`KrausChannel::compile`] promises that applying a [`CompiledChannel`]
//! replays the exact floating-point operation sequence of the one-shot
//! methods — not merely "close", but the same bits. These properties pin
//! that contract across random channels, placements, register sizes, and
//! input states, on both simulation substrates (exact density application
//! and sampled statevector / density trajectories). Comparisons use
//! `f64::to_bits`, so a single ULP of drift fails.

use mathkit::complex::Complex64;
use noise::kraus::KrausChannel;
use proptest::prelude::*;
use qsim::density::DensityMatrix;
use qsim::gates;
use qsim::statevector::StateVector;
use rand::{Rng, SeedableRng};

/// A random channel from the library's constructors, with its arity.
fn channel() -> impl Strategy<Value = KrausChannel> {
    prop_oneof![
        (0.0..1.0f64).prop_map(KrausChannel::depolarizing),
        (0.0..1.0f64).prop_map(KrausChannel::bit_flip),
        (0.0..1.0f64).prop_map(KrausChannel::phase_flip),
        (0.0..1.0f64).prop_map(KrausChannel::amplitude_damping),
        (0.0..1.0f64).prop_map(KrausChannel::phase_damping),
        (0.0..1.0f64).prop_map(KrausChannel::depolarizing_two_qubit),
    ]
}

/// A random register state: seeded single-qubit rotations plus entangling
/// gates, so the density matrix has no special structure the kernels could
/// accidentally rely on.
fn random_state(num_qubits: usize, seed: u64) -> StateVector {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut psi = StateVector::new(num_qubits);
    for qubit in 0..num_qubits {
        let (theta, phi, lambda) = (rng.gen::<f64>() * 3.0, rng.gen::<f64>(), rng.gen::<f64>());
        psi.apply_single(&gates::u3(theta, phi, lambda), qubit);
    }
    for qubit in 1..num_qubits {
        psi.apply_two(&gates::cnot(), qubit - 1, qubit);
    }
    psi
}

/// Distinct targets for an `arity`-qubit channel on a `num_qubits` register,
/// derived from a free index choice.
fn targets(arity: usize, num_qubits: usize, pick: usize) -> Vec<usize> {
    match arity {
        1 => vec![pick % num_qubits],
        2 => {
            let a = pick % num_qubits;
            let b = (a + 1 + pick / num_qubits % (num_qubits - 1)) % num_qubits;
            vec![a, b]
        }
        other => panic!("no library channel has arity {other}"),
    }
}

fn density_bits(rho: &DensityMatrix) -> Vec<(u64, u64)> {
    rho.matrix()
        .as_slice()
        .iter()
        .map(|z: &Complex64| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

fn state_bits(psi: &StateVector) -> Vec<(u64, u64)> {
    psi.amplitudes()
        .iter()
        .map(|z: &Complex64| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

proptest! {
    /// Exact density-matrix application: compiled kernels reproduce the
    /// one-shot embed-and-apply path bit for bit, across every placement —
    /// the dim-4 fast path (2-qubit registers), the strided targeted path
    /// (3..=4), and the legacy embed fallback (5+).
    #[test]
    fn compiled_apply_is_bit_identical_to_one_shot(
        channel in channel(),
        num_qubits in 2usize..6,
        pick in 0usize..64,
        seed in 0u64..1000,
    ) {
        let targets = targets(channel.num_qubits(), num_qubits, pick);
        let base = DensityMatrix::from_statevector(&random_state(num_qubits, seed));
        let compiled = channel.compile(&targets, num_qubits);

        let mut fast = base.clone();
        compiled.apply(&mut fast);
        let mut slow = base;
        channel.apply(&mut slow, &targets);

        prop_assert_eq!(density_bits(&fast), density_bits(&slow));
    }

    /// Sampled statevector trajectories: same seed, same branch choice,
    /// same post-state bits as the deprecated one-shot sampler.
    #[test]
    fn compiled_sample_is_bit_identical_on_statevector(
        channel in channel(),
        num_qubits in 2usize..6,
        pick in 0usize..64,
        seed in 0u64..1000,
        steps in 1usize..8,
    ) {
        let targets = targets(channel.num_qubits(), num_qubits, pick);
        let base = random_state(num_qubits, seed);
        let compiled = channel.compile(&targets, num_qubits);

        let mut fast = base.clone();
        let mut slow = base;
        let mut fast_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut slow_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..steps {
            let fast_branch = compiled.sample(&mut fast, &mut fast_rng).unwrap();
            #[allow(deprecated)]
            let slow_branch = channel
                .sample_on_statevector(&mut slow, &targets, &mut slow_rng)
                .unwrap();
            prop_assert_eq!(fast_branch, slow_branch);
            prop_assert_eq!(state_bits(&fast), state_bits(&slow));
        }
    }

    /// Sampled density trajectories: the mixed-state unravelling agrees the
    /// same way.
    #[test]
    fn compiled_sample_density_is_bit_identical(
        channel in channel(),
        num_qubits in 2usize..5,
        pick in 0usize..64,
        seed in 0u64..1000,
        steps in 1usize..6,
    ) {
        let targets = targets(channel.num_qubits(), num_qubits, pick);
        let base = DensityMatrix::from_statevector(&random_state(num_qubits, seed));
        let compiled = channel.compile(&targets, num_qubits);

        let mut fast = base.clone();
        let mut slow = base;
        let mut fast_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xd1ce);
        let mut slow_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xd1ce);
        for _ in 0..steps {
            let fast_branch = compiled.sample_density(&mut fast, &mut fast_rng).unwrap();
            #[allow(deprecated)]
            let slow_branch = channel
                .sample_on_density(&mut slow, &targets, &mut slow_rng)
                .unwrap();
            prop_assert_eq!(fast_branch, slow_branch);
            prop_assert_eq!(density_bits(&fast), density_bits(&slow));
        }
    }
}
