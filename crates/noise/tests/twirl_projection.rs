//! Properties of the Pauli twirl lowering ([`KrausChannel::twirl`]).
//!
//! The twirl of a channel is **defined** as the diagonal of its χ matrix in
//! the Pauli basis — equivalently, the Bell diagonal of its Choi state.
//! These properties pin that identity against the independent density-matrix
//! implementation: for random channels from the library's constructors, the
//! twirled probability vector must be a probability distribution, must equal
//! the Bell diagonal of `(Λ ⊗ I)|Φ⁺⟩⟨Φ⁺|` computed with the exact kernels,
//! and the exactness classification must match each constructor's known
//! χ structure. The Klein-group convolution algebra (the compile-time object
//! the frame backend samples from) must be commutative, associative, and
//! order-invariant, so folding an η-gate chain is independent of compile
//! order.

use noise::kraus::KrausChannel;
use noise::twirl::PauliDistribution;
use proptest::prelude::*;
use qsim::bell::{bell_diagonal_probabilities, BellState};
use qsim::density::DensityMatrix;
use qsim::pauli::Pauli;

/// A random channel from the library's constructors, avoiding the exact
/// boundary rates where amplitude damping degenerates to identity.
fn channel() -> impl Strategy<Value = KrausChannel> {
    prop_oneof![
        (0.0..1.0f64).prop_map(KrausChannel::depolarizing),
        (0.0..1.0f64).prop_map(KrausChannel::bit_flip),
        (0.0..1.0f64).prop_map(KrausChannel::phase_flip),
        (0.01..0.99f64).prop_map(KrausChannel::amplitude_damping),
        (0.0..1.0f64).prop_map(KrausChannel::phase_damping),
        (0.0..1.0f64).prop_map(KrausChannel::depolarizing_two_qubit),
    ]
}

/// The Bell diagonal of the channel's Choi state, computed with the exact
/// density kernels: the channel applied to one half (arity 1) or both halves
/// (arity 2) of `|Φ⁺⟩`.
fn choi_bell_diagonal(channel: &KrausChannel) -> [f64; 4] {
    let mut rho = DensityMatrix::from_statevector(&BellState::PhiPlus.statevector());
    match channel.num_qubits() {
        1 => channel.apply(&mut rho, &[0]),
        2 => channel.apply(&mut rho, &[0, 1]),
        other => panic!("no library channel has arity {other}"),
    }
    bell_diagonal_probabilities(&rho)
}

proptest! {
    /// The twirl is a probability distribution, and so is its pushforward
    /// onto the Klein four-group.
    #[test]
    fn twirl_is_a_probability_distribution(channel in channel()) {
        let twirled = channel.twirl();
        prop_assert!(twirled.probabilities().iter().all(|&p| p >= -1e-12));
        let total: f64 = twirled.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        let frame: f64 = twirled.frame_distribution().probabilities().iter().sum();
        prop_assert!((frame - 1.0).abs() < 1e-9, "frame pushforward sums to {frame}");
    }

    /// The frame distribution equals the Bell diagonal of the Choi state.
    ///
    /// For a single-qubit channel this holds for **any** channel, exact or
    /// not: distinct Paulis move `|Φ⁺⟩` to orthogonal Bell states, so every
    /// discarded χ off-diagonal lands strictly off the Bell diagonal. For a
    /// two-qubit channel, products with equal Klein masks could interfere on
    /// the diagonal, so the identity is asserted only when the twirl is
    /// exact (the library's two-qubit channel is Pauli-diagonal, so in
    /// practice both arms are exercised).
    #[test]
    fn twirl_equals_the_bell_diagonal_of_the_choi_state(channel in channel()) {
        let twirled = channel.twirl();
        if channel.num_qubits() == 1 || twirled.is_exact() {
            let choi = choi_bell_diagonal(&channel);
            let frame = twirled.frame_distribution().probabilities();
            for (pauli, bell) in Pauli::ALL.into_iter().zip(BellState::ALL) {
                let (p, q) = (
                    frame[pauli.to_index() as usize],
                    choi[bell.to_index()],
                );
                prop_assert!(
                    (p - q).abs() < 1e-9,
                    "{pauli:?}/{bell:?}: twirl {p} vs Choi diagonal {q}"
                );
            }
        }
    }

    /// The exactness flag matches each constructor's known χ structure:
    /// Pauli-diagonal channels (and phase damping, whose *map* is a phase
    /// flip) twirl losslessly, amplitude damping never does.
    #[test]
    fn exactness_classification_matches_the_constructors(
        p in 0.0..1.0f64,
        gamma in 0.01..0.99f64,
    ) {
        prop_assert!(KrausChannel::depolarizing(p).twirl().is_exact());
        prop_assert!(KrausChannel::bit_flip(p).twirl().is_exact());
        prop_assert!(KrausChannel::phase_flip(p).twirl().is_exact());
        prop_assert!(KrausChannel::phase_damping(p).twirl().is_exact());
        prop_assert!(KrausChannel::depolarizing_two_qubit(p).twirl().is_exact());
        prop_assert!(!KrausChannel::amplitude_damping(gamma).twirl().is_exact());
    }

    /// The Klein-group convolution is commutative and associative within
    /// rounding, `point_mass(I)` is its identity, and folding a chain is
    /// invariant under compile order — the property the `TwirledProgram`
    /// compiler relies on when it folds placements in program order.
    #[test]
    fn convolution_is_an_order_invariant_abelian_monoid(
        a in channel(),
        b in channel(),
        c in channel(),
    ) {
        let (a, b, c) = (
            a.twirl().frame_distribution(),
            b.twirl().frame_distribution(),
            c.twirl().frame_distribution(),
        );
        let close = |x: PauliDistribution, y: PauliDistribution| {
            x.probabilities()
                .iter()
                .zip(y.probabilities())
                .all(|(p, q)| (p - q).abs() < 1e-12)
        };
        prop_assert!(close(a.convolve(&b), b.convolve(&a)));
        prop_assert!(close(a.convolve(&b).convolve(&c), a.convolve(&b.convolve(&c))));
        prop_assert!(close(a.convolve(&PauliDistribution::point_mass(Pauli::I)), a));
        // Every order of the three-element chain folds to the same table.
        let forward = a.convolve(&b).convolve(&c);
        prop_assert!(close(c.convolve(&a).convolve(&b), forward));
        prop_assert!(close(b.convolve(&c).convolve(&a), forward));
    }

    /// Repeated-squaring `convolution_power` matches the literal n-fold
    /// convolution — the η-gate chain collapse is not an approximation.
    #[test]
    fn convolution_power_matches_the_literal_chain(
        channel in channel(),
        eta in 0usize..40,
    ) {
        let step = channel.twirl().frame_distribution();
        let mut literal = PauliDistribution::point_mass(Pauli::I);
        for _ in 0..eta {
            literal = literal.convolve(&step);
        }
        let fast = step.convolution_power(eta);
        for (p, q) in literal.probabilities().iter().zip(fast.probabilities()) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }
}
