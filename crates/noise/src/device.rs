//! NISQ device models.
//!
//! A [`DeviceModel`] bundles the calibration numbers the paper quotes for `ibm_brisbane`
//! (gate durations, gate errors, T1/T2, readout error) and turns them into per-operation
//! [`KrausChannel`]s that the noisy executor inserts after every gate.

use crate::kraus::KrausChannel;
use crate::readout::ReadoutError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bundle of device calibration data sufficient to build a noise model.
///
/// # Examples
///
/// ```rust
/// use noise::device::DeviceModel;
///
/// let device = DeviceModel::ibm_brisbane_like();
/// assert_eq!(device.identity_gate_time_ns(), 60.0);
/// let channel = device.identity_gate_channel();
/// assert!(channel.is_trace_preserving(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    identity_gate_time_ns: f64,
    single_qubit_gate_time_ns: f64,
    two_qubit_gate_time_ns: f64,
    identity_gate_error: f64,
    single_qubit_gate_error: f64,
    two_qubit_gate_error: f64,
    t1_us: f64,
    t2_us: f64,
    readout: ReadoutError,
    state_prep_error: f64,
    idle_partner_noise: bool,
}

impl DeviceModel {
    /// A perfect, noiseless device (useful as the "ideal simulation" reference the paper
    /// compares fidelities against).
    pub fn ideal() -> Self {
        Self {
            name: "ideal".into(),
            identity_gate_time_ns: 60.0,
            single_qubit_gate_time_ns: 60.0,
            two_qubit_gate_time_ns: 660.0,
            identity_gate_error: 0.0,
            single_qubit_gate_error: 0.0,
            two_qubit_gate_error: 0.0,
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            readout: ReadoutError::ideal(),
            state_prep_error: 0.0,
            idle_partner_noise: false,
        }
    }

    /// A noise model calibrated to the numbers the paper reports for `ibm_brisbane`
    /// (127-qubit Eagle r3):
    ///
    /// - identity gate: 60 ns, error 2.41 × 10⁻⁴,
    /// - median T1 = 233.04 µs, median T2 = 145.75 µs,
    /// - readout assignment error ≈ 1.3 % (typical Eagle median),
    /// - two-qubit (ECR) gates ≈ 660 ns with ≈ 7.5 × 10⁻³ error (consistent with the quoted
    ///   4.5 % error per layered gate over a 100-qubit chain),
    /// - small state-preparation error.
    pub fn ibm_brisbane_like() -> Self {
        Self {
            name: "ibm_brisbane_like".into(),
            identity_gate_time_ns: 60.0,
            single_qubit_gate_time_ns: 60.0,
            two_qubit_gate_time_ns: 660.0,
            identity_gate_error: 2.41e-4,
            single_qubit_gate_error: 2.41e-4,
            two_qubit_gate_error: 7.5e-3,
            t1_us: 233.04,
            t2_us: 145.75,
            readout: ReadoutError::symmetric(0.013),
            state_prep_error: 0.002,
            idle_partner_noise: true,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Duration of one identity gate in nanoseconds (60 ns on `ibm_brisbane`).
    pub fn identity_gate_time_ns(&self) -> f64 {
        self.identity_gate_time_ns
    }

    /// Duration of a generic single-qubit gate in nanoseconds.
    pub fn single_qubit_gate_time_ns(&self) -> f64 {
        self.single_qubit_gate_time_ns
    }

    /// Duration of a two-qubit gate in nanoseconds.
    pub fn two_qubit_gate_time_ns(&self) -> f64 {
        self.two_qubit_gate_time_ns
    }

    /// Error probability of one identity gate.
    pub fn identity_gate_error(&self) -> f64 {
        self.identity_gate_error
    }

    /// Median T1 (relaxation) time in microseconds.
    pub fn t1_us(&self) -> f64 {
        self.t1_us
    }

    /// Median T2 (dephasing) time in microseconds.
    pub fn t2_us(&self) -> f64 {
        self.t2_us
    }

    /// The readout error model.
    pub fn readout(&self) -> ReadoutError {
        self.readout
    }

    /// Probability that a qubit is prepared in the wrong basis state.
    pub fn state_prep_error(&self) -> f64 {
        self.state_prep_error
    }

    /// Whether idle (spectator) qubits accumulate thermal relaxation while gates run on other
    /// qubits. On real hardware they do; turning this off isolates pure channel noise (used by
    /// the ablation benchmarks).
    pub fn idle_partner_noise(&self) -> bool {
        self.idle_partner_noise
    }

    /// Returns `true` when the model introduces no errors at all.
    pub fn is_ideal(&self) -> bool {
        self.identity_gate_error == 0.0
            && self.single_qubit_gate_error == 0.0
            && self.two_qubit_gate_error == 0.0
            && self.t1_us.is_infinite()
            && self.t2_us.is_infinite()
            && self.readout.is_ideal()
            && self.state_prep_error == 0.0
    }

    /// Replaces the readout error (builder-style).
    #[must_use]
    pub fn with_readout(mut self, readout: ReadoutError) -> Self {
        self.readout = readout;
        self
    }

    /// Replaces the T1/T2 times (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the times are non-positive or `t2 > 2·t1`.
    #[must_use]
    pub fn with_t1_t2(mut self, t1_us: f64, t2_us: f64) -> Self {
        assert!(t1_us > 0.0 && t2_us > 0.0, "T1 and T2 must be positive");
        assert!(t2_us <= 2.0 * t1_us, "T2 must not exceed 2·T1");
        self.t1_us = t1_us;
        self.t2_us = t2_us;
        self
    }

    /// Replaces the identity-gate error (builder-style).
    #[must_use]
    pub fn with_identity_gate_error(mut self, error: f64) -> Self {
        assert!((0.0..=1.0).contains(&error), "error must be in [0, 1]");
        self.identity_gate_error = error;
        self
    }

    /// Enables or disables idle-spectator thermal noise (builder-style).
    #[must_use]
    pub fn with_idle_partner_noise(mut self, enabled: bool) -> Self {
        self.idle_partner_noise = enabled;
        self
    }

    /// Replaces the state-preparation error (builder-style).
    #[must_use]
    pub fn with_state_prep_error(mut self, error: f64) -> Self {
        assert!((0.0..=1.0).contains(&error), "error must be in [0, 1]");
        self.state_prep_error = error;
        self
    }

    /// Thermal-relaxation channel for a qubit idling for `duration_ns`.
    pub fn idle_channel(&self, duration_ns: f64) -> KrausChannel {
        if self.t1_us.is_infinite() && self.t2_us.is_infinite() {
            return KrausChannel::identity();
        }
        KrausChannel::thermal_relaxation(self.t1_us, self.t2_us, duration_ns)
    }

    /// The noise channel applied after one identity gate: depolarizing with the calibrated
    /// identity-gate error composed with thermal relaxation over the gate duration.
    ///
    /// This is the paper's channel element: a quantum channel of "length η" is η of these.
    pub fn identity_gate_channel(&self) -> KrausChannel {
        self.single_qubit_noise(self.identity_gate_error, self.identity_gate_time_ns)
    }

    /// The noise channel applied after a generic single-qubit gate.
    pub fn single_qubit_gate_channel(&self) -> KrausChannel {
        self.single_qubit_noise(self.single_qubit_gate_error, self.single_qubit_gate_time_ns)
    }

    /// The noise channel applied after a two-qubit gate (two-qubit depolarizing; thermal
    /// relaxation is added per-qubit by the executor via [`DeviceModel::idle_channel`]).
    pub fn two_qubit_gate_channel(&self) -> KrausChannel {
        if self.two_qubit_gate_error == 0.0 {
            KrausChannel::new("ideal-2q", vec![mathkit::CMatrix::identity(4)])
        } else {
            KrausChannel::depolarizing_two_qubit(self.two_qubit_gate_error)
        }
    }

    /// The duration of a gate given how many qubits it touches and whether it is an identity.
    pub fn gate_duration_ns(&self, num_qubits: usize, is_identity: bool) -> f64 {
        if num_qubits >= 2 {
            self.two_qubit_gate_time_ns
        } else if is_identity {
            self.identity_gate_time_ns
        } else {
            self.single_qubit_gate_time_ns
        }
    }

    /// The state-preparation error channel (a bit flip with the calibrated probability).
    pub fn state_prep_channel(&self) -> KrausChannel {
        if self.state_prep_error == 0.0 {
            KrausChannel::identity()
        } else {
            KrausChannel::bit_flip(self.state_prep_error)
        }
    }

    fn single_qubit_noise(&self, gate_error: f64, duration_ns: f64) -> KrausChannel {
        let depol = if gate_error == 0.0 {
            KrausChannel::identity()
        } else {
            KrausChannel::depolarizing(gate_error)
        };
        if self.t1_us.is_infinite() && self.t2_us.is_infinite() {
            depol
        } else {
            self.idle_channel(duration_ns).compose(&depol)
        }
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::ibm_brisbane_like()
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (id gate {} ns / err {:.2e}, T1 {} µs, T2 {} µs, {})",
            self.name,
            self.identity_gate_time_ns,
            self.identity_gate_error,
            self.t1_us,
            self.t2_us,
            self.readout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::bell::BellState;
    use qsim::density::DensityMatrix;

    #[test]
    fn ideal_device_is_ideal() {
        let d = DeviceModel::ideal();
        assert!(d.is_ideal());
        assert!(!DeviceModel::ibm_brisbane_like().is_ideal());
        assert_eq!(DeviceModel::default(), DeviceModel::ibm_brisbane_like());
    }

    #[test]
    fn brisbane_preset_matches_paper_calibration() {
        let d = DeviceModel::ibm_brisbane_like();
        assert_eq!(d.identity_gate_time_ns(), 60.0);
        assert!((d.identity_gate_error() - 2.41e-4).abs() < 1e-12);
        assert!((d.t1_us() - 233.04).abs() < 1e-9);
        assert!((d.t2_us() - 145.75).abs() < 1e-9);
        assert!(d.idle_partner_noise());
        assert!(d.name().contains("brisbane"));
    }

    #[test]
    fn gate_channels_are_cptp() {
        let d = DeviceModel::ibm_brisbane_like();
        assert!(d.identity_gate_channel().is_trace_preserving(1e-8));
        assert!(d.single_qubit_gate_channel().is_trace_preserving(1e-8));
        assert!(d.two_qubit_gate_channel().is_trace_preserving(1e-8));
        assert!(d.idle_channel(1000.0).is_trace_preserving(1e-8));
        assert!(d.state_prep_channel().is_trace_preserving(1e-8));
    }

    #[test]
    fn ideal_device_channels_do_nothing() {
        let d = DeviceModel::ideal();
        let bell = BellState::PhiPlus.statevector();
        let mut rho = DensityMatrix::from_statevector(&bell);
        d.identity_gate_channel().apply(&mut rho, &[0]);
        d.idle_channel(5000.0).apply(&mut rho, &[1]);
        assert!((rho.fidelity_with_pure(&bell) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn identity_gate_channel_fidelity_is_high_but_not_perfect() {
        let d = DeviceModel::ibm_brisbane_like();
        let f = d.identity_gate_channel().average_fidelity();
        assert!(f < 1.0);
        assert!(
            f > 0.999,
            "one 60 ns identity gate should barely hurt, got {f}"
        );
    }

    #[test]
    fn seven_hundred_identity_gates_cause_substantial_decay() {
        // The heart of Fig. 3: after η = 700 identity gates the Bell pair has lost a lot of
        // fidelity (accuracy drops below ~60 % once readout errors are added).
        let d = DeviceModel::ibm_brisbane_like();
        let channel = d.identity_gate_channel();
        let idle = d.idle_channel(d.identity_gate_time_ns());
        let bell = BellState::PhiPlus.statevector();
        let mut rho = DensityMatrix::from_statevector(&bell);
        for _ in 0..700 {
            channel.apply(&mut rho, &[0]);
            idle.apply(&mut rho, &[1]);
        }
        let f = rho.fidelity_with_pure(&bell);
        assert!(
            f < 0.75,
            "fidelity after 700 noisy identity gates should be well below 1, got {f}"
        );
        assert!(
            f > 0.3,
            "the pair should not be completely destroyed, got {f}"
        );
    }

    #[test]
    fn builder_style_overrides() {
        let d = DeviceModel::ideal()
            .with_readout(ReadoutError::symmetric(0.05))
            .with_t1_t2(100.0, 150.0)
            .with_identity_gate_error(0.01)
            .with_state_prep_error(0.01)
            .with_idle_partner_noise(true);
        assert!(!d.is_ideal());
        assert_eq!(d.readout().p01(), 0.05);
        assert_eq!(d.t1_us(), 100.0);
        assert!((d.identity_gate_error() - 0.01).abs() < 1e-12);
        assert!(d.idle_partner_noise());
        assert!((d.state_prep_error() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "T2 must not exceed")]
    fn with_t1_t2_rejects_unphysical_values() {
        let _ = DeviceModel::ideal().with_t1_t2(10.0, 100.0);
    }

    #[test]
    fn gate_durations() {
        let d = DeviceModel::ibm_brisbane_like();
        assert_eq!(d.gate_duration_ns(1, true), 60.0);
        assert_eq!(d.gate_duration_ns(1, false), 60.0);
        assert_eq!(d.gate_duration_ns(2, false), 660.0);
        assert_eq!(d.single_qubit_gate_time_ns(), 60.0);
        assert_eq!(d.two_qubit_gate_time_ns(), 660.0);
    }

    #[test]
    fn display_mentions_device_name() {
        let text = DeviceModel::ibm_brisbane_like().to_string();
        assert!(text.contains("brisbane"));
        assert!(text.contains("readout"));
    }
}
