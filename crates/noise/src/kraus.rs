//! Kraus-operator noise channels.
//!
//! Every noise process in the reproduction is a completely-positive trace-preserving (CPTP)
//! map written as a set of Kraus operators `{K_i}` with `Σ K_i† K_i = I`. The constructors
//! here cover the textbook single-qubit channels plus the composite *thermal relaxation*
//! channel used to model idling qubits on `ibm_brisbane`.

use crate::compiled::CompiledChannel;
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use qsim::density::DensityMatrix;
use qsim::error::QsimError;
use qsim::gates;
use qsim::statevector::StateVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named CPTP map given by its Kraus operators.
///
/// # Examples
///
/// ```rust
/// use noise::kraus::KrausChannel;
///
/// let channel = KrausChannel::depolarizing(0.1);
/// assert!(channel.is_trace_preserving(1e-10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrausChannel {
    name: String,
    operators: Vec<CMatrix>,
}

impl KrausChannel {
    /// Creates a channel from raw Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operator list is empty, the operators have mismatched dimensions, or the
    /// completeness relation `Σ K_i† K_i = I` fails by more than `1e-6`.
    pub fn new<S: Into<String>>(name: S, operators: Vec<CMatrix>) -> Self {
        assert!(
            !operators.is_empty(),
            "a Kraus channel needs at least one operator"
        );
        let dim = operators[0].rows();
        assert!(
            operators.iter().all(|k| k.rows() == dim && k.cols() == dim),
            "all Kraus operators must be square with equal dimension"
        );
        let channel = Self {
            name: name.into(),
            operators,
        };
        assert!(
            channel.is_trace_preserving(1e-6),
            "Kraus operators do not satisfy the completeness relation"
        );
        channel
    }

    /// The identity (noiseless) channel on a single qubit.
    pub fn identity() -> Self {
        Self {
            name: "identity".into(),
            operators: vec![gates::identity()],
        }
    }

    /// Single-qubit depolarizing channel: with probability `p` the state is replaced by one
    /// of the three non-identity Paulis chosen uniformly (`p/4` each, identity `1 − 3p/4`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let ops = vec![
            gates::identity().scale(Complex64::real((1.0 - 3.0 * p / 4.0).sqrt())),
            gates::pauli_x().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_y().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_z().scale(Complex64::real((p / 4.0).sqrt())),
        ];
        Self {
            name: format!("depolarizing(p={p})"),
            operators: ops,
        }
    }

    /// Two-qubit depolarizing channel: with probability `p` one of the 15 non-identity
    /// two-qubit Pauli products is applied (uniformly).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn depolarizing_two_qubit(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let paulis = [
            gates::identity(),
            gates::pauli_x(),
            gates::pauli_y(),
            gates::pauli_z(),
        ];
        let mut ops = Vec::with_capacity(16);
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let weight = if i == 0 && j == 0 {
                    1.0 - 15.0 * p / 16.0
                } else {
                    p / 16.0
                };
                ops.push(a.kron(b).scale(Complex64::real(weight.sqrt())));
            }
        }
        Self {
            name: format!("depolarizing2q(p={p})"),
            operators: ops,
        }
    }

    /// Bit-flip channel: applies `X` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self {
            name: format!("bit_flip(p={p})"),
            operators: vec![
                gates::identity().scale(Complex64::real((1.0 - p).sqrt())),
                gates::pauli_x().scale(Complex64::real(p.sqrt())),
            ],
        }
    }

    /// Phase-flip channel: applies `Z` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self {
            name: format!("phase_flip(p={p})"),
            operators: vec![
                gates::identity().scale(Complex64::real((1.0 - p).sqrt())),
                gates::pauli_z().scale(Complex64::real(p.sqrt())),
            ],
        }
    }

    /// Amplitude-damping channel with decay probability `gamma` (models T1 relaxation).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let k0 = CMatrix::from_rows(&[
            vec![Complex64::ONE, Complex64::ZERO],
            vec![Complex64::ZERO, Complex64::real((1.0 - gamma).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            vec![Complex64::ZERO, Complex64::real(gamma.sqrt())],
            vec![Complex64::ZERO, Complex64::ZERO],
        ]);
        Self {
            name: format!("amplitude_damping(γ={gamma})"),
            operators: vec![k0, k1],
        }
    }

    /// Phase-damping channel with dephasing probability `lambda` (models pure dephasing).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let k0 = CMatrix::from_rows(&[
            vec![Complex64::ONE, Complex64::ZERO],
            vec![Complex64::ZERO, Complex64::real((1.0 - lambda).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[
            vec![Complex64::ZERO, Complex64::ZERO],
            vec![Complex64::ZERO, Complex64::real(lambda.sqrt())],
        ]);
        Self {
            name: format!("phase_damping(λ={lambda})"),
            operators: vec![k0, k1],
        }
    }

    /// Thermal-relaxation channel for a qubit idling for `duration_ns` on hardware with the
    /// given `t1_us` and `t2_us` times: amplitude damping with `γ = 1 − e^{−t/T1}` composed
    /// with pure dephasing chosen so the total coherence decay matches `e^{−t/T2}`.
    ///
    /// # Panics
    ///
    /// Panics if the times are non-positive or `t2 > 2·t1` (unphysical).
    pub fn thermal_relaxation(t1_us: f64, t2_us: f64, duration_ns: f64) -> Self {
        assert!(t1_us > 0.0 && t2_us > 0.0, "T1 and T2 must be positive");
        assert!(
            t2_us <= 2.0 * t1_us + 1e-12,
            "T2 must not exceed 2·T1 (got T1={t1_us}, T2={t2_us})"
        );
        assert!(duration_ns >= 0.0, "duration must be non-negative");
        let t_us = duration_ns / 1000.0;
        let gamma = 1.0 - (-t_us / t1_us).exp();
        // Pure-dephasing rate: 1/Tφ = 1/T2 − 1/(2 T1).
        let inv_tphi = (1.0 / t2_us - 1.0 / (2.0 * t1_us)).max(0.0);
        let lambda = 1.0 - (-t_us * inv_tphi).exp();
        let damping = Self::amplitude_damping(gamma);
        let dephasing = Self::phase_damping(lambda);
        let mut composed = dephasing.compose(&damping);
        composed.name =
            format!("thermal_relaxation(T1={t1_us}µs, T2={t2_us}µs, t={duration_ns}ns)");
        composed
    }

    /// Channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Kraus operators of the channel.
    pub fn operators(&self) -> &[CMatrix] {
        &self.operators
    }

    /// Dimension the channel acts on (2 for single-qubit, 4 for two-qubit).
    pub fn dim(&self) -> usize {
        self.operators[0].rows()
    }

    /// Number of qubits the channel acts on.
    pub fn num_qubits(&self) -> usize {
        self.dim().trailing_zeros() as usize
    }

    /// Checks the completeness relation `Σ K_i† K_i = I` to within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let dim = self.dim();
        let mut sum = CMatrix::zeros(dim, dim);
        for k in &self.operators {
            sum = &sum + &k.adjoint().matmul(k);
        }
        sum.approx_eq(&CMatrix::identity(dim), tol)
    }

    /// Sequential composition: `self ∘ other` (apply `other` first, then `self`).
    ///
    /// # Panics
    ///
    /// Panics if the channels act on different dimensions.
    pub fn compose(&self, other: &KrausChannel) -> KrausChannel {
        assert_eq!(
            self.dim(),
            other.dim(),
            "cannot compose channels of different dimensions"
        );
        let mut ops = Vec::with_capacity(self.operators.len() * other.operators.len());
        for a in &self.operators {
            for b in &other.operators {
                ops.push(a.matmul(b));
            }
        }
        KrausChannel {
            name: format!("{} ∘ {}", self.name, other.name),
            operators: ops,
        }
    }

    /// Compiles this channel against a fixed `(targets, num_qubits)`
    /// placement — the fast path for channels applied more than a handful
    /// of times (see [`crate::compiled`]).
    ///
    /// The compiled form precomputes the embedded operators, their
    /// adjoints, the sparse structure the kernels iterate, and the strided
    /// index tables for targeted-qubit application; applying it is
    /// bit-identical to the one-shot methods on this type but performs no
    /// per-call validation, embedding, or steady-state heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the target list length does not match the channel arity,
    /// or the targets are invalid for a `num_qubits` register (the checks
    /// the one-shot methods perform per call happen here, once).
    pub fn compile(&self, targets: &[usize], num_qubits: usize) -> CompiledChannel {
        self.check_arity(targets);
        CompiledChannel::new(self, targets, num_qubits)
    }

    /// Applies the channel to the given qubits of a density matrix.
    ///
    /// One-shot convenience: validates and embeds per call. For repeated
    /// application of the same placement, [`compile`](Self::compile) first.
    ///
    /// # Panics
    ///
    /// Panics if the target list length does not match the channel arity or the targets are
    /// invalid for the register.
    pub fn apply(&self, rho: &mut DensityMatrix, qubits: &[usize]) {
        self.check_arity(qubits);
        rho.apply_kraus(&self.operators, qubits);
    }

    /// Applies one **sampled trajectory step** of this channel to a pure
    /// state: Born-samples a single Kraus branch (probability `‖K_i|ψ⟩‖²`)
    /// and renormalises, instead of summing every branch into a density
    /// matrix. Averaging over many samples reproduces the exact channel — the
    /// Monte-Carlo wavefunction unravelling used by the engine's sampled
    /// statevector backend. Exactly one `f64` is drawn from `rng` per call.
    ///
    /// Returns the selected branch index.
    ///
    /// # Panics
    ///
    /// Panics if the target list length does not match the channel arity
    /// (the same contract as [`KrausChannel::apply`]).
    ///
    /// # Errors
    ///
    /// Propagates [`QsimError`] from
    /// [`StateVector::apply_kraus_sampled`] — notably
    /// [`QsimError::ZeroNorm`] when every branch has vanishing probability.
    #[deprecated(
        since = "0.2.0",
        note = "compile the placement once and use `CompiledChannel::sample` — \
                bit-identical, without per-call validation and embedding"
    )]
    pub fn sample_on_statevector<R: Rng + ?Sized>(
        &self,
        psi: &mut StateVector,
        qubits: &[usize],
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.check_arity(qubits);
        psi.apply_kraus_sampled(&self.operators, qubits, rng)
    }

    /// The mixed-state sibling of
    /// [`sample_on_statevector`](Self::sample_on_statevector): Born-samples a
    /// single Kraus branch (probability `Tr(K_i ρ K_i†)`) and renormalises.
    /// Agrees with the statevector unravelling in distribution on pure
    /// states, and stays well-defined on mixed ones.
    ///
    /// Returns the selected branch index.
    ///
    /// # Panics
    ///
    /// Panics if the target list length does not match the channel arity.
    ///
    /// # Errors
    ///
    /// Propagates [`QsimError`] from
    /// [`DensityMatrix::apply_kraus_sampled`].
    #[deprecated(
        since = "0.2.0",
        note = "compile the placement once and use `CompiledChannel::sample_density` — \
                bit-identical, without per-call validation and embedding"
    )]
    pub fn sample_on_density<R: Rng + ?Sized>(
        &self,
        rho: &mut DensityMatrix,
        qubits: &[usize],
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.check_arity(qubits);
        rho.apply_kraus_sampled(&self.operators, qubits, rng)
    }

    fn check_arity(&self, qubits: &[usize]) {
        assert_eq!(
            qubits.len(),
            self.num_qubits(),
            "channel acts on {} qubit(s) but {} target(s) were given",
            self.num_qubits(),
            qubits.len()
        );
    }

    /// Average gate fidelity of this single-qubit channel with respect to the identity,
    /// computed via the entanglement fidelity of one half of a `|Φ+⟩` pair:
    /// `F_avg = (2 F_e + 1) / 3`.
    ///
    /// # Panics
    ///
    /// Panics if called on a multi-qubit channel.
    pub fn average_fidelity(&self) -> f64 {
        assert_eq!(
            self.num_qubits(),
            1,
            "average_fidelity is defined for single-qubit channels"
        );
        let bell = qsim::bell::BellState::PhiPlus.statevector();
        let mut rho = DensityMatrix::from_statevector(&bell);
        rho.apply_kraus(&self.operators, &[0]);
        let entanglement_fidelity = rho.fidelity_with_pure(&bell);
        (2.0 * entanglement_fidelity + 1.0) / 3.0
    }
}

impl fmt::Display for KrausChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Kraus operators)",
            self.name,
            self.operators.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::bell::BellState;
    use qsim::statevector::StateVector;

    #[test]
    fn constructors_are_trace_preserving() {
        let channels = vec![
            KrausChannel::identity(),
            KrausChannel::depolarizing(0.3),
            KrausChannel::depolarizing_two_qubit(0.2),
            KrausChannel::bit_flip(0.1),
            KrausChannel::phase_flip(0.25),
            KrausChannel::amplitude_damping(0.4),
            KrausChannel::phase_damping(0.15),
            KrausChannel::thermal_relaxation(233.04, 145.75, 60.0),
        ];
        for c in channels {
            assert!(c.is_trace_preserving(1e-9), "{c} is not trace preserving");
        }
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn new_rejects_incomplete_operators() {
        let _ = KrausChannel::new(
            "broken",
            vec![gates::identity().scale(Complex64::real(0.5))],
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn depolarizing_rejects_bad_probability() {
        let _ = KrausChannel::depolarizing(1.5);
    }

    #[test]
    fn identity_channel_changes_nothing() {
        let mut rho = DensityMatrix::from_statevector(&BellState::PhiPlus.statevector());
        let before = rho.clone();
        KrausChannel::identity().apply(&mut rho, &[0]);
        assert_eq!(rho, before);
    }

    #[test]
    fn depolarizing_limits() {
        // p = 0 → identity; p = 1 → maximally mixed single-qubit marginal.
        let mut rho = DensityMatrix::new(1);
        KrausChannel::depolarizing(0.0).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - 0.0).abs() < 1e-12);
        let mut rho = DensityMatrix::new(1);
        KrausChannel::depolarizing(1.0).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - 0.5).abs() < 1e-10);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_flips_with_given_probability() {
        let mut rho = DensityMatrix::new(1);
        KrausChannel::bit_flip(0.3).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - 0.3).abs() < 1e-10);
    }

    #[test]
    fn phase_flip_leaves_populations_untouched() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_single(&gates::hadamard(), 0);
        let before_p1 = rho.probability_one(0);
        KrausChannel::phase_flip(0.4).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - before_p1).abs() < 1e-10);
        // but coherence (purity) is reduced
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn amplitude_damping_decays_towards_ground_state() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_single(&gates::pauli_x(), 0); // |1⟩
        KrausChannel::amplitude_damping(0.6).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - 0.4).abs() < 1e-10);
        // Full damping lands exactly in |0⟩.
        let mut rho = DensityMatrix::new(1);
        rho.apply_single(&gates::pauli_x(), 0);
        KrausChannel::amplitude_damping(1.0).apply(&mut rho, &[0]);
        assert!((rho.probability_one(0) - 0.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn thermal_relaxation_with_zero_duration_is_identity() {
        let c = KrausChannel::thermal_relaxation(233.04, 145.75, 0.0);
        let mut rho = DensityMatrix::from_statevector(&BellState::PhiPlus.statevector());
        let before = rho.clone();
        c.apply(&mut rho, &[0]);
        assert!(rho.matrix().approx_eq(before.matrix(), 1e-10));
    }

    #[test]
    fn thermal_relaxation_reduces_bell_fidelity_monotonically() {
        let bell = BellState::PhiPlus.statevector();
        let mut last = 1.0;
        for duration in [60.0, 600.0, 6000.0, 42_000.0] {
            let c = KrausChannel::thermal_relaxation(233.04, 145.75, duration);
            let mut rho = DensityMatrix::from_statevector(&bell);
            c.apply(&mut rho, &[0]);
            let f = rho.fidelity_with_pure(&bell);
            assert!(f < last, "fidelity must decrease with idle time");
            last = f;
        }
        assert!(last > 0.5, "42µs idle should not fully destroy the pair");
    }

    #[test]
    #[should_panic(expected = "T2 must not exceed")]
    fn thermal_relaxation_rejects_unphysical_t2() {
        let _ = KrausChannel::thermal_relaxation(100.0, 300.0, 60.0);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = KrausChannel::bit_flip(0.2);
        let b = KrausChannel::phase_flip(0.3);
        let composed = a.compose(&b);
        assert!(composed.is_trace_preserving(1e-9));

        let mut rho_seq = DensityMatrix::new(1);
        rho_seq.apply_single(&gates::hadamard(), 0);
        b.apply(&mut rho_seq, &[0]);
        a.apply(&mut rho_seq, &[0]);

        let mut rho_comp = DensityMatrix::new(1);
        rho_comp.apply_single(&gates::hadamard(), 0);
        composed.apply(&mut rho_comp, &[0]);

        assert!(rho_seq.matrix().approx_eq(rho_comp.matrix(), 1e-10));
    }

    #[test]
    fn two_qubit_depolarizing_acts_on_pairs() {
        let mut rho = DensityMatrix::from_statevector(&BellState::PhiPlus.statevector());
        KrausChannel::depolarizing_two_qubit(0.1).apply(&mut rho, &[0, 1]);
        let f = rho.fidelity_with_pure(&BellState::PhiPlus.statevector());
        assert!(f < 1.0 && f > 0.85);
    }

    #[test]
    fn average_fidelity_of_identity_and_depolarizing() {
        assert!((KrausChannel::identity().average_fidelity() - 1.0).abs() < 1e-10);
        // Depolarizing with parameter p has F_avg = 1 − p/2 under this convention.
        let p = 0.2;
        let f = KrausChannel::depolarizing(p).average_fidelity();
        assert!((f - (1.0 - p / 2.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "channel acts on")]
    fn apply_with_wrong_arity_panics() {
        let mut rho = DensityMatrix::new(2);
        KrausChannel::depolarizing(0.1).apply(&mut rho, &[0, 1]);
    }

    #[test]
    fn applying_noise_only_to_one_half_of_a_bell_pair_keeps_probabilities_valid() {
        let mut rho = DensityMatrix::from_statevector(&BellState::PhiPlus.statevector());
        KrausChannel::thermal_relaxation(233.04, 145.75, 42_000.0).apply(&mut rho, &[0]);
        let probs = rho.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p >= -1e-12));
        // The state is still closer to Φ+ than to any other Bell state.
        let f_target = rho.fidelity_with_pure(&BellState::PhiPlus.statevector());
        for other in [BellState::PhiMinus, BellState::PsiPlus, BellState::PsiMinus] {
            assert!(f_target > rho.fidelity_with_pure(&other.statevector()));
        }
    }

    #[test]
    fn display_includes_name_and_operator_count() {
        let c = KrausChannel::depolarizing(0.5);
        let text = c.to_string();
        assert!(text.contains("depolarizing"));
        assert!(text.contains('4'));
        assert_eq!(c.num_qubits(), 1);
        assert_eq!(KrausChannel::depolarizing_two_qubit(0.1).num_qubits(), 2);
    }

    #[test]
    #[allow(deprecated)] // the deprecated one-shots keep their own coverage
    fn trajectory_step_matches_channel_statistics_on_statevectors() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let channel = KrausChannel::bit_flip(0.3);
        let mut flips = 0;
        let n = 4000;
        for _ in 0..n {
            let mut psi = StateVector::new(1);
            if channel
                .sample_on_statevector(&mut psi, &[0], &mut rng)
                .unwrap()
                == 1
            {
                flips += 1;
            }
            assert!(psi.is_normalized(1e-12));
        }
        let frac = flips as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "flip fraction {frac}");
    }

    #[test]
    #[allow(deprecated)] // the deprecated one-shots keep their own coverage
    fn trajectory_mean_approximates_the_exact_channel_on_densities() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let channel = KrausChannel::thermal_relaxation(233.04, 145.75, 6000.0);
        let bell = BellState::PhiPlus.statevector();
        let mut exact = DensityMatrix::from_statevector(&bell);
        channel.apply(&mut exact, &[0]);
        let n = 3000;
        let mut mean = mathkit::CMatrix::zeros(4, 4);
        for _ in 0..n {
            let mut rho = DensityMatrix::from_statevector(&bell);
            channel.sample_on_density(&mut rho, &[0], &mut rng).unwrap();
            mean = &mean + rho.matrix();
        }
        mean = mean.scale(Complex64::real(1.0 / n as f64));
        assert!(
            mean.approx_eq(exact.matrix(), 0.03),
            "trajectory mean must approximate the exact channel"
        );
    }

    #[test]
    #[allow(deprecated)] // the deprecated one-shots keep their own coverage
    fn zero_probability_trajectory_branches_are_never_selected() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // bit_flip(0.0) carries an exactly-zero X branch: the trajectory step
        // must never pick it (picking it would renormalise a zero vector).
        let channel = KrausChannel::bit_flip(0.0);
        for _ in 0..200 {
            let mut psi = StateVector::new(1);
            assert_eq!(
                channel.sample_on_statevector(&mut psi, &[0], &mut rng),
                Ok(0)
            );
            assert!(psi.is_normalized(1e-12), "no NaN poisoning");
        }
    }

    #[test]
    #[should_panic(expected = "channel acts on")]
    #[allow(deprecated)] // the deprecated one-shots keep their own coverage
    fn trajectory_step_with_wrong_arity_panics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut psi = StateVector::new(2);
        let _ = KrausChannel::depolarizing(0.1).sample_on_statevector(&mut psi, &[0, 1], &mut rng);
    }

    #[test]
    fn statevector_reference_unchanged_by_channel_on_density_copy() {
        // Sanity: converting to a density matrix and applying noise never mutates the source.
        let psi = StateVector::new(2);
        let mut rho = DensityMatrix::from_statevector(&psi);
        KrausChannel::depolarizing(0.7).apply(&mut rho, &[1]);
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-12);
    }
}
