//! Classical readout (assignment) errors.
//!
//! Superconducting hardware mis-assigns measurement outcomes with probabilities of order one
//! percent; the paper lumps these into the "additional sources of error beyond channel noise,
//! such as calibration and readout errors". [`ReadoutError`] flips measured bits with
//! configurable asymmetric probabilities.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An asymmetric classical bit-flip error applied to measurement outcomes.
///
/// # Examples
///
/// ```rust
/// use noise::readout::ReadoutError;
/// use rand::SeedableRng;
///
/// let err = ReadoutError::symmetric(0.02);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let flipped = (0..10_000).filter(|_| err.apply(0, &mut rng) == 1).count();
/// assert!((flipped as f64 / 10_000.0 - 0.02).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutError {
    /// Probability of reading `1` when the true outcome is `0`.
    p01: f64,
    /// Probability of reading `0` when the true outcome is `1`.
    p10: f64,
}

impl ReadoutError {
    /// Creates an asymmetric readout error.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 must be in [0, 1]");
        assert!((0.0..=1.0).contains(&p10), "p10 must be in [0, 1]");
        Self { p01, p10 }
    }

    /// Creates a symmetric readout error with flip probability `p` in both directions.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }

    /// The perfect (error-free) readout.
    pub fn ideal() -> Self {
        Self { p01: 0.0, p10: 0.0 }
    }

    /// Probability of reading `1` when the true outcome is `0`.
    pub fn p01(&self) -> f64 {
        self.p01
    }

    /// Probability of reading `0` when the true outcome is `1`.
    pub fn p10(&self) -> f64 {
        self.p10
    }

    /// Returns `true` when both flip probabilities are zero.
    pub fn is_ideal(&self) -> bool {
        self.p01 == 0.0 && self.p10 == 0.0
    }

    /// Applies the error to a single measured bit.
    pub fn apply<R: Rng + ?Sized>(&self, bit: u8, rng: &mut R) -> u8 {
        let flip_prob = if bit == 0 { self.p01 } else { self.p10 };
        if flip_prob > 0.0 && rng.gen::<f64>() < flip_prob {
            1 - bit
        } else {
            bit
        }
    }

    /// Applies the error independently to every bit of a register readout.
    pub fn apply_all<R: Rng + ?Sized>(&self, bits: &[u8], rng: &mut R) -> Vec<u8> {
        bits.iter().map(|&b| self.apply(b, rng)).collect()
    }

    /// The probability that a readout of `n` bits is reported entirely correctly, assuming
    /// the true outcome has `zeros` zero-bits and `ones` one-bits.
    pub fn correct_probability(&self, zeros: usize, ones: usize) -> f64 {
        (1.0 - self.p01).powi(zeros as i32) * (1.0 - self.p10).powi(ones as i32)
    }
}

impl Default for ReadoutError {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for ReadoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "readout(p01={}, p10={})", self.p01, self.p10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4242)
    }

    #[test]
    fn ideal_readout_never_flips() {
        let e = ReadoutError::ideal();
        assert!(e.is_ideal());
        let mut r = rng();
        for bit in [0u8, 1u8] {
            for _ in 0..100 {
                assert_eq!(e.apply(bit, &mut r), bit);
            }
        }
    }

    #[test]
    fn symmetric_flip_rate_matches_probability() {
        let e = ReadoutError::symmetric(0.1);
        let mut r = rng();
        let n = 20_000;
        let flips0 = (0..n).filter(|_| e.apply(0, &mut r) == 1).count() as f64 / n as f64;
        let flips1 = (0..n).filter(|_| e.apply(1, &mut r) == 0).count() as f64 / n as f64;
        assert!((flips0 - 0.1).abs() < 0.01);
        assert!((flips1 - 0.1).abs() < 0.01);
    }

    #[test]
    fn asymmetric_probabilities_are_respected() {
        let e = ReadoutError::new(0.0, 0.5);
        let mut r = rng();
        assert_eq!(e.apply(0, &mut r), 0);
        let n = 10_000;
        let flips1 = (0..n).filter(|_| e.apply(1, &mut r) == 0).count() as f64 / n as f64;
        assert!((flips1 - 0.5).abs() < 0.02);
        assert_eq!(e.p01(), 0.0);
        assert_eq!(e.p10(), 0.5);
    }

    #[test]
    #[should_panic(expected = "p01 must be in")]
    fn invalid_probability_panics() {
        let _ = ReadoutError::new(1.5, 0.0);
    }

    #[test]
    fn apply_all_preserves_length() {
        let e = ReadoutError::symmetric(0.3);
        let mut r = rng();
        let out = e.apply_all(&[0, 1, 0, 1, 1], &mut r);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&b| b == 0 || b == 1));
    }

    #[test]
    fn correct_probability_formula() {
        let e = ReadoutError::new(0.1, 0.2);
        let p = e.correct_probability(2, 1);
        assert!((p - 0.9 * 0.9 * 0.8).abs() < 1e-12);
        assert_eq!(ReadoutError::ideal().correct_probability(10, 10), 1.0);
    }

    #[test]
    fn default_is_ideal_and_display_is_informative() {
        assert!(ReadoutError::default().is_ideal());
        assert!(ReadoutError::symmetric(0.02).to_string().contains("0.02"));
    }
}
