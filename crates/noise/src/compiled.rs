//! Compile-once/apply-many channel placements.
//!
//! A [`KrausChannel`] is placement-free: it knows its operators but not
//! which qubits of which register it will act on. The legacy one-shot
//! methods ([`KrausChannel::apply`] and friends) therefore re-validate the
//! targets and re-embed every operator into the full register space on
//! **every call** — wasted work when the same channel hits the same qubits
//! millions of times across a sweep.
//!
//! [`CompiledChannel`] fixes the placement once:
//!
//! ```rust
//! use noise::kraus::KrausChannel;
//! use qsim::DensityMatrix;
//!
//! // Compile once per (channel, targets, register size)...
//! let damp = KrausChannel::amplitude_damping(0.05).compile(&[1], 2);
//!
//! // ...then apply as often as you like: no validation, no embedding,
//! // no steady-state heap allocation.
//! let mut rho = DensityMatrix::new(2);
//! for _ in 0..1000 {
//!     damp.apply(&mut rho);
//! }
//! assert!((rho.trace() - 1.0).abs() < 1e-12);
//! ```
//!
//! # Determinism contract
//!
//! The compiled kernels replay the exact floating-point operation sequence
//! of the one-shot methods they replace (see [`qsim::kernel`]), so results
//! are **bit-identical** (`f64::to_bits`), not merely close, and the
//! sampled entry points draw exactly one `f64` per call — swapping a
//! one-shot call for its compiled form never perturbs a seeded run.

use crate::kraus::KrausChannel;
use qsim::density::DensityMatrix;
use qsim::error::QsimError;
use qsim::kernel::CompiledKraus;
use qsim::statevector::StateVector;
use rand::Rng;
use std::fmt;

/// A [`KrausChannel`] compiled against a fixed `(targets, num_qubits)`
/// placement — the fast path for every per-trial channel application.
///
/// Build with [`KrausChannel::compile`]. Not serialisable by design:
/// compiled form is derived state, rebuilt from the channel on load.
#[derive(Debug, Clone)]
pub struct CompiledChannel {
    name: String,
    targets: Vec<usize>,
    kernel: CompiledKraus,
    /// The placement-free source channel, kept so derived lowerings (the
    /// Pauli twirl of [`CompiledChannel::twirl`]) can reach the operators.
    source: KrausChannel,
}

impl CompiledChannel {
    // detlint: allow(hot-path-alloc): compile-time constructor; the per-trial loop only calls apply/sample
    pub(crate) fn new(channel: &KrausChannel, targets: &[usize], num_qubits: usize) -> Self {
        let kernel = CompiledKraus::compile(channel.operators(), targets, num_qubits)
            .unwrap_or_else(|e| {
                panic!(
                    "cannot compile channel `{}` onto qubits {:?} of a {}-qubit register: {}",
                    channel.name(),
                    targets,
                    num_qubits,
                    e
                )
            });
        Self {
            name: channel.name().to_string(),
            targets: targets.to_vec(),
            kernel,
            source: channel.clone(),
        }
    }

    /// Name of the source channel.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The placement-free channel this placement was compiled from.
    pub fn source_channel(&self) -> &KrausChannel {
        &self.source
    }

    /// The qubits this placement acts on.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Register size the placement was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.kernel.num_qubits()
    }

    /// Number of Kraus operators (trajectory branches).
    pub fn num_branches(&self) -> usize {
        self.kernel.len()
    }

    /// Applies the channel exactly, in place — bit-identical to
    /// [`KrausChannel::apply`] with the compiled targets.
    ///
    /// # Panics
    ///
    /// Panics if `rho` has a different register size than the placement
    /// was compiled for.
    pub fn apply(&self, rho: &mut DensityMatrix) {
        self.kernel.apply(rho);
    }

    /// Applies one sampled trajectory step to a pure state — bit-identical
    /// to [`KrausChannel::sample_on_statevector`], one `f64` drawn from
    /// `rng` per call. Returns the selected branch index.
    ///
    /// # Errors
    ///
    /// [`QsimError::ZeroNorm`] when every branch has vanishing
    /// probability; the state is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `psi` has a different register size than the placement
    /// was compiled for.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        psi: &mut StateVector,
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.kernel.sample(psi, rng)
    }

    /// Applies one sampled trajectory step to a mixed state — bit-identical
    /// to [`KrausChannel::sample_on_density`]. Returns the selected branch
    /// index.
    ///
    /// # Errors
    ///
    /// [`QsimError::ZeroNorm`] when every branch has vanishing
    /// probability; the state is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `rho` has a different register size than the placement
    /// was compiled for.
    pub fn sample_density<R: Rng + ?Sized>(
        &self,
        rho: &mut DensityMatrix,
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        self.kernel.sample_density(rho, rng)
    }
}

impl fmt::Display for CompiledChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on qubits {:?} of {} ({} branches)",
            self.name,
            self.targets,
            self.num_qubits(),
            self.num_branches()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn density_bits(rho: &DensityMatrix) -> Vec<(u64, u64)> {
        rho.matrix()
            .as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    }

    #[test]
    fn compiled_apply_matches_one_shot() {
        let channel = KrausChannel::depolarizing(0.2);
        let compiled = channel.compile(&[1], 2);
        let mut a = DensityMatrix::new(2);
        a.apply_single(&qsim::gates::hadamard(), 0);
        a.apply_two(&qsim::gates::cnot(), 0, 1);
        let mut b = a.clone();
        compiled.apply(&mut a);
        channel.apply(&mut b, &[1]);
        assert_eq!(density_bits(&a), density_bits(&b));
    }

    #[test]
    #[allow(deprecated)]
    fn compiled_sample_matches_one_shot() {
        let channel = KrausChannel::amplitude_damping(0.3);
        let compiled = channel.compile(&[0], 2);
        let mut psi_a = qsim::bell::BellState::PhiPlus.statevector();
        let mut psi_b = psi_a.clone();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let a = compiled.sample(&mut psi_a, &mut rng_a).unwrap();
            let b = channel
                .sample_on_statevector(&mut psi_b, &[0], &mut rng_b)
                .unwrap();
            assert_eq!(a, b);
        }
        let bits_a: Vec<_> = psi_a
            .amplitudes()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect();
        let bits_b: Vec<_> = psi_b
            .amplitudes()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn display_names_the_placement() {
        let compiled = KrausChannel::depolarizing(0.1).compile(&[0], 2);
        let text = compiled.to_string();
        assert!(text.contains("depolarizing"), "got {text}");
        assert!(text.contains("[0]"), "got {text}");
        assert_eq!(compiled.targets(), &[0]);
        assert_eq!(compiled.num_qubits(), 2);
        assert_eq!(compiled.num_branches(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot compile channel")]
    fn compile_rejects_bad_targets() {
        KrausChannel::depolarizing(0.1).compile(&[7], 2);
    }
}
