//! Pauli twirling: projecting Kraus channels onto Pauli channels.
//!
//! Twirling a channel `Λ` over the Pauli group replaces it by the average
//! `Λ_T(ρ) = (1/4ⁿ) Σ_P P† Λ(P ρ P†) P`, which is always a **Pauli
//! channel**: a classical probability distribution over Pauli errors,
//!
//! ```text
//! Λ_T(ρ) = Σ_P p_P · P ρ P†,   p_P = |Tr(P K_i)|² summed over i, / d².
//! ```
//!
//! The twirled probabilities are exactly the diagonal of the channel's χ
//! (process) matrix in the Pauli basis; the off-diagonal χ entries are what
//! twirling discards. A channel therefore **equals its twirl** — twirling
//! is lossless — iff its χ matrix is already diagonal. The reproduction's
//! device model splits cleanly along that line: the depolarizing gate
//! channels and bit-flip state-prep errors are Pauli-diagonal (exact),
//! while thermal relaxation carries amplitude damping whose `|0⟩⟨1|` jump
//! operator has off-diagonal χ weight (approximate).
//!
//! [`TwirledChannel`] precomputes the probability vector once per placement
//! with a cumulative table for `O(log k)` sampling. [`PauliDistribution`]
//! is its pushforward onto the Klein four-group action on a Bell label
//! (`I, σz, σx, iσy` on either half of an EPR pair): 4 probabilities that
//! can be **convolved** — composing independent Pauli channels multiplies
//! group elements, i.e. XOR-convolves distributions — so a whole η-gate
//! transmission chain collapses to one precomputed table and one draw.

use crate::compiled::CompiledChannel;
use crate::kraus::KrausChannel;
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use qsim::pauli::Pauli;
use rand::Rng;
use std::fmt;

/// Scaled tolerance for "is this χ entry zero": generous against f64
/// accumulation over 16-operator channels, far below any physical rate.
const CHI_ZERO_TOL: f64 = 1e-9;

/// The trace `Tr(P · K)` of a Pauli-product against a Kraus operator.
fn pauli_trace(pauli_product: &CMatrix, k: &CMatrix) -> Complex64 {
    let dim = k.rows();
    let p = pauli_product.as_slice();
    let m = k.as_slice();
    let mut sum = Complex64::ZERO;
    for i in 0..dim {
        for j in 0..dim {
            sum += p[i * dim + j] * m[j * dim + i];
        }
    }
    sum
}

/// The tensor product of per-qubit Paulis for a base-4 multi-index, first
/// qubit as the most significant digit.
fn pauli_product_matrix(index: usize, num_qubits: usize) -> CMatrix {
    let mut m: Option<CMatrix> = None;
    for q in 0..num_qubits {
        let digit = (index >> (2 * (num_qubits - 1 - q))) & 0b11;
        let factor = Pauli::from_index(digit as u8).matrix();
        m = Some(match m {
            None => factor,
            Some(acc) => acc.kron(&factor),
        });
    }
    m.expect("at least one qubit")
}

/// The Klein four-group element a Pauli multi-index acts as on a Bell
/// label: the composition of its per-qubit digits (a Pauli on *either*
/// half of an EPR pair XORs the label the same way, so only the product
/// matters).
fn frame_mask(index: usize, num_qubits: usize) -> Pauli {
    let mut mask = Pauli::I;
    for q in 0..num_qubits {
        let digit = (index >> (2 * (num_qubits - 1 - q))) & 0b11;
        mask = mask.compose(Pauli::from_index(digit as u8));
    }
    mask
}

/// A Kraus channel lowered to its Pauli twirl: a probability vector over
/// the `4ⁿ` Pauli products on the channel's qubits.
///
/// Build with [`KrausChannel::twirl`] or [`CompiledChannel::twirl`].
///
/// # Examples
///
/// ```rust
/// use noise::kraus::KrausChannel;
///
/// let twirled = KrausChannel::depolarizing(0.1).twirl();
/// // Depolarizing is already a Pauli channel: twirling is lossless.
/// assert!(twirled.is_exact());
/// assert!((twirled.probability(0) - (1.0 - 3.0 * 0.1 / 4.0)).abs() < 1e-12);
///
/// let damped = KrausChannel::amplitude_damping(0.2).twirl();
/// // Amplitude damping has off-diagonal χ weight: twirling approximates.
/// assert!(!damped.is_exact());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwirledChannel {
    name: String,
    num_qubits: usize,
    probs: Vec<f64>,
    cumulative: Vec<f64>,
    frame_masks: Vec<Pauli>,
    exact: bool,
}

impl TwirledChannel {
    // detlint: allow(hot-path-alloc): compile-time twirl derivation; trials only index the finished tables
    pub(crate) fn of(channel: &KrausChannel) -> Self {
        let num_qubits = channel.num_qubits();
        let dim = channel.dim();
        let size = 1usize << (2 * num_qubits);
        // One Pauli trace per (multi-index, Kraus operator).
        let traces: Vec<Vec<Complex64>> = (0..size)
            .map(|p| {
                let pm = pauli_product_matrix(p, num_qubits);
                channel
                    .operators()
                    .iter()
                    .map(|k| pauli_trace(&pm, k))
                    .collect()
            })
            .collect();
        let d2 = (dim * dim) as f64;
        let probs: Vec<f64> = traces
            .iter()
            .map(|row| row.iter().map(|t| t.norm_sqr()).sum::<f64>() / d2)
            .collect();
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "twirl of `{}` is not a probability distribution (sum {total})",
            channel.name()
        );
        // χ off-diagonals: Σ_i Tr(P K_i) · conj(Tr(Q K_i)). The iσy phase of
        // our alphabet only rotates rows/columns, so zero-ness is unaffected.
        let exact = (0..size).all(|p| {
            (p + 1..size).all(|q| {
                let chi: Complex64 = traces[p]
                    .iter()
                    .zip(&traces[q])
                    .map(|(a, b)| *a * b.conj())
                    .fold(Complex64::ZERO, |acc, z| acc + z);
                chi.norm() / d2 < CHI_ZERO_TOL
            })
        });
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        let frame_masks = (0..size).map(|i| frame_mask(i, num_qubits)).collect();
        Self {
            name: format!("twirl({})", channel.name()),
            num_qubits,
            probs,
            cumulative,
            frame_masks,
            exact,
        }
    }

    /// Name of the twirled channel (derived from the source channel).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits the channel acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of Pauli products (`4ⁿ`).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always false: a twirl has at least one Pauli product.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The probability of the Pauli product with the given base-4
    /// multi-index (per-qubit digits in `I, σz, σx, iσy` order, first
    /// qubit most significant).
    pub fn probability(&self, index: usize) -> f64 {
        self.probs[index]
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// `true` when the source channel already was a Pauli channel, so the
    /// twirl reproduces it **exactly**; `false` when off-diagonal χ weight
    /// was discarded and the twirl is an approximation.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Samples a Pauli-product multi-index — one `f64` draw, `O(log 4ⁿ)`
    /// binary search over the cumulative table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r = rng.gen::<f64>();
        self.cumulative
            .partition_point(|&c| c <= r)
            .min(self.probs.len() - 1)
    }

    /// Samples the Klein-group kick this channel applies to a Bell label.
    pub fn sample_frame_kick<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        self.frame_masks[self.sample(rng)]
    }

    /// The pushforward of this channel onto the Klein four-group action on
    /// a Bell label: multiple Pauli products can act as the same label
    /// relabelling (e.g. `X ⊗ X` acts as identity on `|Φ+⟩`), so the
    /// 4-element distribution is the exact per-pair sampling object.
    pub fn frame_distribution(&self) -> PauliDistribution {
        let mut probs = [0.0; 4];
        for (i, &p) in self.probs.iter().enumerate() {
            probs[self.frame_masks[i].to_index() as usize] += p;
        }
        PauliDistribution::from_probs(probs)
    }
}

impl fmt::Display for TwirledChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Pauli products, {})",
            self.name,
            self.len(),
            if self.exact { "exact" } else { "approximate" }
        )
    }
}

impl KrausChannel {
    /// Projects this channel onto its Pauli twirl (see the module docs).
    pub fn twirl(&self) -> TwirledChannel {
        TwirledChannel::of(self)
    }
}

impl CompiledChannel {
    /// The Pauli twirl of this placement's source channel.
    pub fn twirl(&self) -> TwirledChannel {
        self.source_channel().twirl()
    }
}

/// A probability distribution over the Klein four-group `{I, σz, σx, iσy}`
/// acting on a Bell label, with its cumulative table.
///
/// This is the per-pair sampling unit of the Pauli-frame substrate. Its
/// algebra is the group algebra of the Klein four-group: composing two
/// independent Pauli channels XOR-convolves their distributions, so a chain
/// of channels — even an η-gate transmission line — folds into **one**
/// distribution at compile time and costs one draw per pair at run time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauliDistribution {
    probs: [f64; 4],
    cumulative: [f64; 4],
}

impl PauliDistribution {
    /// The distribution concentrated on one Pauli (the identity of the
    /// convolution algebra when `pauli` is `I`).
    pub fn point_mass(pauli: Pauli) -> Self {
        let mut probs = [0.0; 4];
        probs[pauli.to_index() as usize] = 1.0;
        Self::from_probs(probs)
    }

    /// Builds a distribution from probabilities in [`Pauli::ALL`] order.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or do not sum to 1 within
    /// `1e-6`.
    pub fn from_probs(probs: [f64; 4]) -> Self {
        assert!(
            probs.iter().all(|&p| p >= -1e-12),
            "negative probability in {probs:?}"
        );
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, not 1"
        );
        let mut cumulative = [0.0; 4];
        let mut acc = 0.0;
        for (c, &p) in cumulative.iter_mut().zip(&probs) {
            acc += p;
            *c = acc;
        }
        Self { probs, cumulative }
    }

    /// The probabilities in [`Pauli::ALL`] order.
    pub fn probabilities(&self) -> [f64; 4] {
        self.probs
    }

    /// `true` when the distribution is (numerically) all identity — the
    /// sampling fast path can skip the draw entirely.
    pub fn is_trivial(&self) -> bool {
        self.probs[0] >= 1.0
    }

    /// Convolution over the Klein four-group: the distribution of
    /// `P ∘ Q` with `P ~ self`, `Q ~ other` — the composition law of
    /// independent Pauli channels.
    #[must_use]
    pub fn convolve(&self, other: &PauliDistribution) -> PauliDistribution {
        let mut probs = [0.0; 4];
        for (i, &a) in self.probs.iter().enumerate() {
            for (j, &b) in other.probs.iter().enumerate() {
                let k = Pauli::from_index(i as u8)
                    .compose(Pauli::from_index(j as u8))
                    .to_index() as usize;
                probs[k] += a * b;
            }
        }
        // Convolution preserves normalisation exactly up to rounding; feed
        // through the constructor to rebuild the cumulative table.
        PauliDistribution::from_probs(probs)
    }

    /// The `n`-fold convolution power — `n` independent applications of
    /// this channel, computed by repeated squaring (`O(log n)` convolutions
    /// at compile time instead of `n` draws per pair at run time).
    #[must_use]
    pub fn convolution_power(&self, n: usize) -> PauliDistribution {
        let mut result = PauliDistribution::point_mass(Pauli::I);
        let mut base = *self;
        let mut exp = n;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.convolve(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.convolve(&base);
            }
        }
        result
    }

    /// Samples one Pauli — a single `f64` draw against the cumulative
    /// table (at most three comparisons).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let r = rng.gen::<f64>();
        let index = self.cumulative.partition_point(|&c| c <= r).min(3);
        Pauli::from_index(index as u8)
    }
}

impl Default for PauliDistribution {
    fn default() -> Self {
        Self::point_mass(Pauli::I)
    }
}

impl fmt::Display for PauliDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PauliDistribution[I={:.4}, Z={:.4}, X={:.4}, iY={:.4}]",
            self.probs[0], self.probs[1], self.probs[2], self.probs[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::density::DensityMatrix;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Applies the twirled channel exactly: Σ_P p_P · P ρ P†.
    fn apply_twirled(twirled: &TwirledChannel, rho: &DensityMatrix) -> CMatrix {
        let dim = 1usize << twirled.num_qubits();
        let mut out = CMatrix::zeros(dim, dim);
        for index in 0..twirled.len() {
            let p = pauli_product_matrix(index, twirled.num_qubits());
            let term = p.matmul(rho.matrix()).matmul(&p.adjoint());
            out = &out + &term.scale(Complex64::real(twirled.probability(index)));
        }
        out
    }

    /// Applies the group-averaged twirl of `channel` exactly:
    /// (1/4ⁿ) Σ_P P† Λ(P ρ P†) P. Pauli conjugation is unitary, so every
    /// intermediate stays a valid density matrix.
    fn apply_group_average(channel: &KrausChannel, rho: &DensityMatrix) -> CMatrix {
        let n = channel.num_qubits();
        let dim = channel.dim();
        let size = 1usize << (2 * n);
        let mut out = CMatrix::zeros(dim, dim);
        let qubits: Vec<usize> = (0..n).collect();
        for index in 0..size {
            let p = pauli_product_matrix(index, n);
            let conjugated = p.matmul(rho.matrix()).matmul(&p.adjoint());
            let mut inner =
                DensityMatrix::from_matrix(conjugated).expect("Pauli conjugation preserves states");
            channel.apply(&mut inner, &qubits);
            let back = p.adjoint().matmul(inner.matrix()).matmul(&p);
            out = &out + &back.scale(Complex64::real(1.0 / size as f64));
        }
        out
    }

    #[test]
    fn pauli_diagonal_channels_twirl_exactly() {
        for channel in [
            KrausChannel::identity(),
            KrausChannel::depolarizing(0.3),
            KrausChannel::bit_flip(0.2),
            KrausChannel::phase_flip(0.4),
            KrausChannel::depolarizing_two_qubit(0.15),
        ] {
            let twirled = channel.twirl();
            assert!(twirled.is_exact(), "{channel} should twirl exactly");
            let total: f64 = twirled.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn damping_channels_twirl_approximately() {
        for channel in [
            KrausChannel::amplitude_damping(0.3),
            KrausChannel::thermal_relaxation(233.04, 145.75, 6000.0),
        ] {
            let twirled = channel.twirl();
            assert!(!twirled.is_exact(), "{channel} has off-diagonal χ weight");
        }
        // Pure dephasing is diagonal: phase damping twirls exactly to a
        // phase-flip channel.
        assert!(KrausChannel::phase_damping(0.3).twirl().is_exact());
    }

    #[test]
    fn depolarizing_probabilities_are_the_textbook_rates() {
        let p = 0.2;
        let twirled = KrausChannel::depolarizing(p).twirl();
        assert!(
            (twirled.probability(Pauli::I.to_index() as usize) - (1.0 - 3.0 * p / 4.0)).abs()
                < 1e-12
        );
        for pauli in [Pauli::Z, Pauli::X, Pauli::IY] {
            assert!((twirled.probability(pauli.to_index() as usize) - p / 4.0).abs() < 1e-12);
        }
        assert_eq!(twirled.len(), 4);
        assert_eq!(twirled.num_qubits(), 1);
        assert!(!twirled.is_empty());
        assert!(twirled.to_string().contains("exact"));
    }

    #[test]
    fn twirled_channel_is_the_group_averaged_channel() {
        // The probability-vector lowering must agree with the literal
        // group average (1/4ⁿ) Σ_P P† Λ(P ρ P†) P on arbitrary states —
        // including for channels where twirling is approximate.
        let mut r = rng(21);
        let channels = [
            KrausChannel::amplitude_damping(0.35),
            KrausChannel::thermal_relaxation(233.04, 145.75, 3000.0),
            KrausChannel::depolarizing(0.25),
        ];
        for channel in &channels {
            let twirled = channel.twirl();
            for _ in 0..6 {
                let rho = random_density(&mut r);
                let a = apply_twirled(&twirled, &rho);
                let b = apply_group_average(channel, &rho);
                assert!(
                    a.approx_eq(&b, 1e-9),
                    "twirl lowering disagrees with group average for {channel}"
                );
            }
            let mixed = DensityMatrix::maximally_mixed(1);
            assert!(apply_twirled(&twirled, &mixed)
                .approx_eq(&apply_group_average(channel, &mixed), 1e-9));
        }
    }

    fn random_density(r: &mut rand::rngs::StdRng) -> DensityMatrix {
        use qsim::statevector::StateVector;
        let mut psi = StateVector::new(1);
        psi.apply_single(&qsim::gates::ry(r.gen::<f64>() * std::f64::consts::PI), 0);
        psi.apply_single(&qsim::gates::rz(r.gen::<f64>() * std::f64::consts::TAU), 0);
        DensityMatrix::from_statevector(&psi)
    }

    #[test]
    fn sampling_follows_the_probability_vector() {
        let mut r = rng(4);
        let twirled = KrausChannel::depolarizing(0.4).twirl();
        let mut counts = [0usize; 4];
        let n = 20_000;
        for _ in 0..n {
            counts[twirled.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frequency = c as f64 / n as f64;
            assert!(
                (frequency - twirled.probability(i)).abs() < 0.02,
                "index {i}: frequency {frequency} vs probability {}",
                twirled.probability(i)
            );
        }
    }

    #[test]
    fn frame_distribution_folds_two_qubit_products() {
        // X⊗X, Y⊗Y, Z⊗Z all act trivially on a Bell label; the two-qubit
        // depolarizing pushforward must reflect that.
        let p = 0.16;
        let twirled = KrausChannel::depolarizing_two_qubit(p).twirl();
        let frame = twirled.frame_distribution();
        let probs = frame.probabilities();
        // p(I-action) = (1 − 15p/16) + 3·(p/16); the rest splits evenly.
        assert!((probs[0] - (1.0 - 15.0 * p / 16.0 + 3.0 * p / 16.0)).abs() < 1e-12);
        for prob in probs.iter().skip(1) {
            assert!((prob - 4.0 * p / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_matches_channel_composition() {
        let a = KrausChannel::bit_flip(0.2).twirl().frame_distribution();
        let b = KrausChannel::phase_flip(0.3).twirl().frame_distribution();
        let composed = KrausChannel::bit_flip(0.2)
            .compose(&KrausChannel::phase_flip(0.3))
            .twirl()
            .frame_distribution();
        let convolved = a.convolve(&b);
        for k in 0..4 {
            assert!(
                (convolved.probabilities()[k] - composed.probabilities()[k]).abs() < 1e-12,
                "index {k}"
            );
        }
    }

    #[test]
    fn convolution_power_matches_repeated_convolution() {
        let step = KrausChannel::depolarizing(0.01)
            .twirl()
            .frame_distribution();
        let mut manual = PauliDistribution::point_mass(Pauli::I);
        for _ in 0..25 {
            manual = manual.convolve(&step);
        }
        let fast = step.convolution_power(25);
        for k in 0..4 {
            assert!((manual.probabilities()[k] - fast.probabilities()[k]).abs() < 1e-12);
        }
        // Zero power is the identity of the algebra.
        assert!(step.convolution_power(0).is_trivial());
        assert!(PauliDistribution::default().is_trivial());
        assert!(!step.is_trivial());
    }

    #[test]
    fn distribution_sampling_follows_probabilities() {
        let mut r = rng(6);
        let dist = PauliDistribution::from_probs([0.55, 0.25, 0.15, 0.05]);
        let mut counts = [0usize; 4];
        let n = 20_000;
        for _ in 0..n {
            counts[dist.sample(&mut r).to_index() as usize] += 1;
        }
        for (k, count) in counts.iter().enumerate() {
            let freq = *count as f64 / n as f64;
            assert!(
                (freq - dist.probabilities()[k]).abs() < 0.02,
                "Pauli {k}: {freq}"
            );
        }
        assert!(dist.to_string().contains("0.55"));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn from_probs_rejects_unnormalised_input() {
        let _ = PauliDistribution::from_probs([0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn compiled_placement_twirl_matches_the_channel_twirl() {
        let channel = KrausChannel::depolarizing(0.1);
        let compiled = channel.compile(&[1], 2);
        assert_eq!(
            compiled.twirl().probabilities(),
            channel.twirl().probabilities()
        );
        assert!(compiled.twirl().is_exact());
    }
}
