//! Noisy circuit execution.
//!
//! [`NoisyExecutor`] runs a [`qsim::Circuit`] on the density-matrix back-end, inserting the
//! device's noise channel after every gate, optionally applying thermal relaxation to idle
//! spectator qubits, corrupting measured bits with the readout error, and starting from a
//! state-preparation-error-corrupted `|0…0⟩`.

use crate::compiled::CompiledChannel;
use crate::device::DeviceModel;
use qsim::circuit::{Circuit, Operation};
use qsim::counts::Counts;
use qsim::density::DensityMatrix;
use qsim::error::QsimError;
use qsim::gates;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The device's noise channels compiled against one register size, built
/// lazily as gates touch placements. A circuit applies the same few
/// channels at the same few placements thousands of times; deriving the
/// Kraus operators from calibration numbers and embedding them anew per
/// gate dominated execution, so each placement is compiled on first use
/// and replayed from then on (bit-identically — see [`KrausChannel::compile`]).
///
/// [`KrausChannel::compile`]: crate::kraus::KrausChannel::compile
struct NoiseCache {
    num_qubits: usize,
    /// Single-qubit placements, indexed by qubit: state prep, the generic
    /// single-qubit gate channel, the identity-gate channel, and the three
    /// idle durations the executor uses (spectator of a single-qubit gate,
    /// of an identity gate, and of / participant in a two-qubit gate).
    prep: Vec<Option<CompiledChannel>>,
    single: Vec<Option<CompiledChannel>>,
    identity: Vec<Option<CompiledChannel>>,
    idle_single: Vec<Option<CompiledChannel>>,
    idle_identity: Vec<Option<CompiledChannel>>,
    idle_two: Vec<Option<CompiledChannel>>,
    /// Two-qubit gate channel per ordered target pair.
    two_qubit: BTreeMap<(usize, usize), CompiledChannel>,
}

impl NoiseCache {
    fn new(num_qubits: usize) -> Self {
        let empty = || (0..num_qubits).map(|_| None).collect();
        Self {
            num_qubits,
            prep: empty(),
            single: empty(),
            identity: empty(),
            idle_single: empty(),
            idle_identity: empty(),
            idle_two: empty(),
            two_qubit: BTreeMap::new(),
        }
    }

    fn single_qubit(
        slots: &mut [Option<CompiledChannel>],
        qubit: usize,
        num_qubits: usize,
        build: impl FnOnce() -> crate::kraus::KrausChannel,
    ) -> &CompiledChannel {
        slots[qubit].get_or_insert_with(|| build().compile(&[qubit], num_qubits))
    }

    fn two_qubit(&mut self, device: &DeviceModel, a: usize, b: usize) -> &CompiledChannel {
        let num_qubits = self.num_qubits;
        self.two_qubit
            .entry((a, b))
            .or_insert_with(|| device.two_qubit_gate_channel().compile(&[a, b], num_qubits))
    }
}

/// Runs circuits under a device noise model.
///
/// # Examples
///
/// ```rust
/// use noise::device::DeviceModel;
/// use noise::executor::NoisyExecutor;
/// use qsim::circuit::CircuitBuilder;
/// use rand::SeedableRng;
///
/// let circuit = CircuitBuilder::new(1, 1).x(0).measure(0, 0).build();
/// let executor = NoisyExecutor::new(DeviceModel::ideal());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let counts = executor.sample(&circuit, 100, &mut rng).unwrap();
/// assert_eq!(counts.get("1"), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisyExecutor {
    device: DeviceModel,
}

impl NoisyExecutor {
    /// Creates an executor for the given device model.
    pub fn new(device: DeviceModel) -> Self {
        Self { device }
    }

    /// The device model this executor simulates.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Evolves the quantum part of the circuit (gates, barriers — everything up to the first
    /// measurement or reset) and returns the resulting density matrix together with the index
    /// of the first unprocessed operation.
    ///
    /// # Errors
    ///
    /// Propagates dimension / qubit-range errors from the simulator.
    pub fn evolve_prefix(&self, circuit: &Circuit) -> Result<(DensityMatrix, usize), QsimError> {
        let mut cache = NoiseCache::new(circuit.num_qubits());
        self.evolve_prefix_cached(circuit, &mut cache)
    }

    fn evolve_prefix_cached(
        &self,
        circuit: &Circuit,
        cache: &mut NoiseCache,
    ) -> Result<(DensityMatrix, usize), QsimError> {
        let mut rho = DensityMatrix::new(circuit.num_qubits());
        // State-preparation errors on every qubit.
        if !self.device.is_ideal() {
            for q in 0..circuit.num_qubits() {
                NoiseCache::single_qubit(&mut cache.prep, q, cache.num_qubits, || {
                    self.device.state_prep_channel()
                })
                .apply(&mut rho);
            }
        }
        for (index, op) in circuit.operations().iter().enumerate() {
            match op {
                Operation::Gate {
                    name,
                    matrix,
                    qubits,
                } => {
                    rho.try_apply_unitary(matrix, qubits)?;
                    self.apply_gate_noise(cache, &mut rho, name, qubits, circuit.num_qubits());
                }
                Operation::Barrier => {}
                Operation::Measure { .. } | Operation::Reset { .. } => {
                    return Ok((rho, index));
                }
            }
        }
        Ok((rho, circuit.operations().len()))
    }

    /// Runs the circuit once, returning the final density matrix and the classical register
    /// (readout errors applied).
    ///
    /// # Errors
    ///
    /// Propagates dimension / qubit-range errors from the simulator.
    pub fn run<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<(DensityMatrix, Vec<u8>), QsimError> {
        let mut cache = NoiseCache::new(circuit.num_qubits());
        let (rho, resume_at) = self.evolve_prefix_cached(circuit, &mut cache)?;
        let mut rho = rho;
        let clbits = self.finish(circuit, &mut cache, &mut rho, resume_at, rng)?;
        Ok((rho, clbits))
    }

    /// Executes the circuit `shots` times and histograms the classical register.
    ///
    /// The (deterministic) unitary+noise prefix is evolved once; only the measurement suffix
    /// is re-sampled per shot, which keeps long identity-chain experiments (Fig. 3) cheap.
    ///
    /// # Errors
    ///
    /// Propagates dimension / qubit-range errors from the simulator.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        shots: usize,
        rng: &mut R,
    ) -> Result<Counts, QsimError> {
        let mut cache = NoiseCache::new(circuit.num_qubits());
        let (prefix_rho, resume_at) = self.evolve_prefix_cached(circuit, &mut cache)?;
        let mut counts = Counts::new();
        let mut rho = prefix_rho.clone();
        for _ in 0..shots {
            rho.clone_from(&prefix_rho);
            let clbits = self.finish(circuit, &mut cache, &mut rho, resume_at, rng)?;
            let label: String = clbits
                .iter()
                .map(|b| if *b == 1 { '1' } else { '0' })
                .collect();
            counts.record(label);
        }
        Ok(counts)
    }

    /// Processes the remaining operations (measurements, resets, any trailing gates) of a
    /// circuit starting at operation `resume_at`.
    fn finish<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        cache: &mut NoiseCache,
        rho: &mut DensityMatrix,
        resume_at: usize,
        rng: &mut R,
    ) -> Result<Vec<u8>, QsimError> {
        let mut clbits = vec![0u8; circuit.num_clbits()];
        let readout = self.device.readout();
        for op in &circuit.operations()[resume_at..] {
            match op {
                Operation::Gate {
                    name,
                    matrix,
                    qubits,
                } => {
                    rho.try_apply_unitary(matrix, qubits)?;
                    self.apply_gate_noise(cache, rho, name, qubits, circuit.num_qubits());
                }
                Operation::Barrier => {}
                Operation::Measure { qubit, clbit } => {
                    if *qubit >= circuit.num_qubits() {
                        return Err(QsimError::QubitOutOfRange {
                            qubit: *qubit,
                            num_qubits: circuit.num_qubits(),
                        });
                    }
                    let raw = rho.measure(*qubit, rng);
                    let observed = readout.apply(raw, rng);
                    if *clbit < clbits.len() {
                        clbits[*clbit] = observed;
                    }
                }
                Operation::Reset { qubit } => {
                    let bit = rho.measure(*qubit, rng);
                    if bit == 1 {
                        rho.apply_single(&gates::pauli_x(), *qubit);
                    }
                }
            }
        }
        Ok(clbits)
    }

    /// Applies the device's post-gate noise: the gate-class channel on the targets and, when
    /// enabled, thermal relaxation on every idle spectator qubit for the gate duration.
    /// Every placement comes from the cache, compiled on first touch.
    fn apply_gate_noise(
        &self,
        cache: &mut NoiseCache,
        rho: &mut DensityMatrix,
        gate_name: &str,
        qubits: &[usize],
        num_qubits: usize,
    ) {
        if self.device.is_ideal() {
            return;
        }
        let is_identity = gate_name == "id";
        if qubits.len() >= 2 {
            if let [a, b] = *qubits {
                cache.two_qubit(&self.device, a, b).apply(rho);
            } else {
                // No library gate has arity > 2; preserve the one-shot
                // path's arity panic rather than mis-compiling a placement.
                self.device.two_qubit_gate_channel().apply(rho, qubits);
            }
            // Thermal relaxation on the participating qubits for the (long) 2-qubit gate.
            for &q in qubits {
                NoiseCache::single_qubit(&mut cache.idle_two, q, num_qubits, || {
                    self.device
                        .idle_channel(self.device.gate_duration_ns(2, false))
                })
                .apply(rho);
            }
        } else if is_identity {
            NoiseCache::single_qubit(&mut cache.identity, qubits[0], num_qubits, || {
                self.device.identity_gate_channel()
            })
            .apply(rho);
        } else {
            NoiseCache::single_qubit(&mut cache.single, qubits[0], num_qubits, || {
                self.device.single_qubit_gate_channel()
            })
            .apply(rho);
        }
        if self.device.idle_partner_noise() {
            let slots = match (qubits.len(), is_identity) {
                (1, true) => &mut cache.idle_identity,
                (1, false) => &mut cache.idle_single,
                _ => &mut cache.idle_two,
            };
            for q in 0..num_qubits {
                if !qubits.contains(&q) {
                    NoiseCache::single_qubit(slots, q, num_qubits, || {
                        self.device
                            .idle_channel(self.device.gate_duration_ns(qubits.len(), is_identity))
                    })
                    .apply(rho);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::bell::BellState;
    use qsim::circuit::CircuitBuilder;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    fn bell_circuit(eta: usize) -> Circuit {
        CircuitBuilder::new(2, 2)
            .h(0)
            .cnot(0, 1)
            .identity_chain(0, eta)
            .measure(0, 0)
            .measure(1, 1)
            .build()
    }

    #[test]
    fn ideal_executor_matches_noiseless_statistics() {
        let executor = NoisyExecutor::new(DeviceModel::ideal());
        let counts = executor.sample(&bell_circuit(10), 400, &mut rng()).unwrap();
        assert_eq!(counts.get("01") + counts.get("10"), 0);
        assert_eq!(counts.total(), 400);
    }

    #[test]
    fn noisy_executor_reduces_but_does_not_destroy_correlations_at_eta_10() {
        let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
        let counts = executor
            .sample(&bell_circuit(10), 1024, &mut rng())
            .unwrap();
        let correlated = counts.get("00") + counts.get("11");
        let frac = correlated as f64 / counts.total() as f64;
        assert!(
            frac > 0.9,
            "short channel should stay highly correlated, got {frac}"
        );
        assert!(frac < 1.0, "noise must show up somewhere over 1024 shots");
    }

    #[test]
    fn long_identity_chain_degrades_correlations() {
        let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
        let short = executor.sample(&bell_circuit(10), 512, &mut rng()).unwrap();
        let long = executor
            .sample(&bell_circuit(700), 512, &mut rng())
            .unwrap();
        let frac = |c: &Counts| (c.get("00") + c.get("11")) as f64 / c.total() as f64;
        assert!(
            frac(&long) < frac(&short),
            "correlation must degrade with channel length: short {} vs long {}",
            frac(&short),
            frac(&long)
        );
    }

    #[test]
    fn run_returns_density_matrix_and_bits() {
        let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
        let (rho, bits) = executor.run(&bell_circuit(10), &mut rng()).unwrap();
        assert_eq!(bits.len(), 2);
        assert!((rho.trace() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn evolve_prefix_stops_at_first_measurement() {
        let executor = NoisyExecutor::new(DeviceModel::ideal());
        let circuit = bell_circuit(5);
        let (rho, resume) = executor.evolve_prefix(&circuit).unwrap();
        // 2 preparation gates + 5 identity gates come before the first measurement.
        assert_eq!(resume, 7);
        let bell = BellState::PhiPlus.statevector();
        assert!((rho.fidelity_with_pure(&bell) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn readout_errors_show_up_even_without_gate_noise() {
        let device =
            DeviceModel::ideal().with_readout(crate::readout::ReadoutError::symmetric(0.25));
        let executor = NoisyExecutor::new(device);
        let circuit = CircuitBuilder::new(1, 1).measure(0, 0).build();
        let counts = executor.sample(&circuit, 2000, &mut rng()).unwrap();
        let frac_one = counts.frequency("1");
        assert!((frac_one - 0.25).abs() < 0.04, "got {frac_one}");
    }

    #[test]
    fn state_prep_error_flips_initial_qubits() {
        let device = DeviceModel::ideal().with_state_prep_error(0.3);
        let executor = NoisyExecutor::new(device);
        let circuit = CircuitBuilder::new(1, 1).measure(0, 0).build();
        let counts = executor.sample(&circuit, 2000, &mut rng()).unwrap();
        let frac_one = counts.frequency("1");
        assert!((frac_one - 0.3).abs() < 0.05, "got {frac_one}");
    }

    #[test]
    fn reset_and_trailing_gates_after_measurement_are_processed() {
        let executor = NoisyExecutor::new(DeviceModel::ideal());
        let circuit = CircuitBuilder::new(1, 2)
            .x(0)
            .measure(0, 0)
            .reset(0)
            .x(0)
            .measure(0, 1)
            .build();
        let (_, bits) = executor.run(&circuit, &mut rng()).unwrap();
        assert_eq!(bits, vec![1, 1]);
    }

    #[test]
    fn errors_propagate_from_bad_circuits() {
        let executor = NoisyExecutor::new(DeviceModel::ideal());
        let bad = CircuitBuilder::new(1, 1).measure(4, 0).build();
        assert!(executor.run(&bad, &mut rng()).is_err());
        let bad_gate = CircuitBuilder::new(1, 0)
            .unitary("cx", gates::cnot(), &[0])
            .build();
        assert!(executor.sample(&bad_gate, 4, &mut rng()).is_err());
    }

    #[test]
    fn device_accessor_returns_the_model() {
        let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
        assert_eq!(executor.device().name(), "ibm_brisbane_like");
    }
}
