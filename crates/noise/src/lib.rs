//! # noise — Kraus channels and NISQ device models
//!
//! The paper runs its protocol on IBM's `ibm_brisbane` (127-qubit Eagle r3) and reports the
//! hardware's calibration data: 60 ns identity gates with error 2.41 × 10⁻⁴, median
//! T1 = 233.04 µs, median T2 = 145.75 µs, 4.5 % error per layered gate on a 100-qubit chain.
//! This crate turns those numbers into a simulable noise model:
//!
//! - [`kraus::KrausChannel`] — CPTP maps (depolarizing, bit/phase flip, amplitude damping,
//!   phase damping, thermal relaxation) expressed as Kraus operators and validated for
//!   completeness.
//! - [`readout::ReadoutError`] — classical assignment errors applied to measured bits.
//! - [`device::DeviceModel`] — a named bundle of gate times, gate errors, T1/T2 and readout
//!   error, with the `ibm_brisbane_like` and `ideal` presets.
//! - [`compiled::CompiledChannel`] — a channel fixed at one qubit placement, precompiled for
//!   repeated application.
//! - [`executor::NoisyExecutor`] — runs a [`qsim::Circuit`] on the density-matrix back-end,
//!   inserting the device's noise after every gate and corrupting measured bits with the
//!   readout error.
//!
//! ## Compile once, apply many
//!
//! The one-shot methods ([`KrausChannel::apply`] and the deprecated per-call samplers)
//! validate targets and embed operators on **every call**. Hot loops should compile the
//! placement once with [`KrausChannel::compile`] and replay it: application is bit-identical
//! — the compiled kernels run the exact floating-point operation sequence of the one-shot
//! path, and the samplers draw the same `f64`s in the same order — but validation, embedding,
//! and steady-state heap allocation drop to zero. See `docs/kernels.md` in the repo root for
//! the full architecture.
//!
//! ```rust
//! use noise::prelude::*;
//! use qsim::density::DensityMatrix;
//!
//! let channel = KrausChannel::depolarizing(0.05);
//! // Fix the placement once: qubit 0 of a 2-qubit register…
//! let compiled = channel.compile(&[0], 2);
//! let mut rho = DensityMatrix::new(2);
//! // …then apply it as often as the sweep needs, allocation-free.
//! for _ in 0..1000 {
//!     compiled.apply(&mut rho);
//! }
//! ```
//!
//! ## Example
//!
//! ```rust
//! use noise::prelude::*;
//! use qsim::circuit::CircuitBuilder;
//! use rand::SeedableRng;
//!
//! let device = DeviceModel::ibm_brisbane_like();
//! let circuit = CircuitBuilder::new(2, 2)
//!     .h(0)
//!     .cnot(0, 1)
//!     .identity_chain(0, 10)
//!     .measure(0, 0)
//!     .measure(1, 1)
//!     .build();
//! let executor = NoisyExecutor::new(device);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let counts = executor.sample(&circuit, 256, &mut rng).unwrap();
//! assert_eq!(counts.total(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod device;
pub mod executor;
pub mod kraus;
pub mod readout;
pub mod twirl;

pub use compiled::CompiledChannel;
pub use device::DeviceModel;
pub use executor::NoisyExecutor;
pub use kraus::KrausChannel;
pub use readout::ReadoutError;
pub use twirl::{PauliDistribution, TwirledChannel};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::compiled::CompiledChannel;
    pub use crate::device::DeviceModel;
    pub use crate::executor::NoisyExecutor;
    pub use crate::kraus::KrausChannel;
    pub use crate::readout::ReadoutError;
    pub use crate::twirl::{PauliDistribution, TwirledChannel};
}
