//! Shared fixtures for the serve integration suites.

use protocol::engine::{Axis, Campaign, CampaignSpace, CampaignWorkload, Scenario};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory, removed on drop (also on assertion panics).
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "ua-di-qsdc-serve-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small honest-session scenario; `identity_seed` varies the identity
/// material so different jobs carry genuinely different work.
pub fn scenario(identity_seed: u64) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(16)
        .build()
        .expect("test config is valid");
    let mut rng = StdRng::seed_from_u64(identity_seed);
    let identities = IdentityPair::generate(2, &mut rng);
    Scenario::new(config, identities)
}

/// A two-point session campaign over channel length.
pub fn campaign(identity_seed: u64, trials: usize) -> Campaign {
    Campaign {
        label: "serve-test".to_string(),
        master_seed: 41,
        trials,
        workload: CampaignWorkload::Session {
            base: scenario(identity_seed),
        },
        space: CampaignSpace::Grid(vec![Axis::Eta(vec![0, 10])]),
    }
}
