//! In-process service tests: protocol semantics, fairness-adjacent
//! behaviors (quota backpressure, cancellation), streaming snapshots, and
//! the malformed-input paths — every failure answered by name, never a
//! server panic or a dropped connection.

mod common;

use common::{campaign, scenario, TempDir};
use protocol::engine::{CampaignWorkload, NoSampler, Parallelism, SessionEngine};
use protocol::wire::{ErrorKind, JobSpec, JobState, Request, Response};
use serve::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn start_server(spool: &TempDir, workers: usize, quota: usize, snapshot_trials: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        spool_dir: spool.0.clone(),
        workers,
        quota,
        snapshot_trials,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn session_job_streams_snapshots_and_finishes_byte_identically() {
    let spool = TempDir::new("session");
    let server = start_server(&spool, 2, 4, 4);
    let mut client = Client::connect(server.local_addr()).expect("connects");
    assert_eq!(client.quota(), 4);
    assert_eq!(client.snapshot_trials(), 4);

    let scenario = scenario(7);
    let trials = 16usize;
    let seed = 99u64;
    let response = client
        .submit(JobSpec::Session {
            scenario: scenario.clone(),
            trials,
            seed,
        })
        .expect("submit round-trips");
    let Response::Accepted { job } = response else {
        panic!("expected Accepted, got {response:?}");
    };

    let (done, snapshots) = client.wait_done(job).expect("job completes");
    let Response::Done {
        summary: Some(summary),
        report: None,
        ..
    } = &done
    else {
        panic!("expected session Done, got {done:?}");
    };

    // The served summary is byte-identical to a local run of the same
    // scenario, trials and seed.
    let local = SessionEngine::new(seed)
        .run_trials(&scenario, trials)
        .expect("local run");
    assert_eq!(
        serde::json::to_string(summary),
        serde::json::to_string(&local)
    );

    // Every streamed snapshot is the merged contiguous prefix — itself
    // byte-identical to a local run of that prefix.
    assert!(
        !snapshots.is_empty(),
        "a 16-trial job at cadence 4 must stream at least one snapshot"
    );
    for snapshot in &snapshots {
        let Response::Snapshot {
            trials_done,
            trials_total,
            summary,
            ..
        } = snapshot
        else {
            panic!("expected Snapshot, got {snapshot:?}");
        };
        assert_eq!(*trials_total, trials as u64);
        assert!(*trials_done > 0 && *trials_done < trials as u64);
        let prefix = SessionEngine::new(seed)
            .run_trials(&scenario, *trials_done as usize)
            .expect("prefix run");
        assert_eq!(
            serde::json::to_string(summary),
            serde::json::to_string(&prefix)
        );
    }

    // The spooled result file holds exactly the summary's bytes.
    let result_path = spool.0.join(format!("job-{job:010}")).join("result.json");
    let on_disk = std::fs::read_to_string(result_path).expect("result.json exists");
    assert_eq!(on_disk, serde::json::to_string(&local));

    // Status after completion answers from the spool.
    client.send(&Request::Status { job }).expect("status sends");
    let status = client.recv().expect("status answered");
    let Response::Status {
        state: JobState::Done,
        trials_done,
        trials_total,
        ..
    } = status
    else {
        panic!("expected Done status, got {status:?}");
    };
    assert_eq!((trials_done, trials_total), (trials as u64, trials as u64));
}

#[test]
fn campaign_job_folds_the_same_report_as_a_direct_run() {
    let spool = TempDir::new("campaign");
    let server = start_server(&spool, 2, 4, 4);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let campaign = campaign(11, 6);
    let response = client
        .submit(JobSpec::Campaign {
            campaign: campaign.clone(),
        })
        .expect("submit round-trips");
    let Response::Accepted { job } = response else {
        panic!("expected Accepted, got {response:?}");
    };
    let (done, snapshots) = client.wait_done(job).expect("job completes");
    assert!(snapshots.is_empty(), "campaigns do not stream snapshots");
    let Response::Done {
        summary: None,
        report: Some(report),
        ..
    } = &done
    else {
        panic!("expected campaign Done, got {done:?}");
    };

    let direct = campaign
        .run_direct(Parallelism::Serial, &NoSampler)
        .expect("direct run");
    assert_eq!(
        serde::json::to_string(report),
        serde::json::to_string(&direct)
    );
}

#[test]
fn quota_exhaustion_answers_busy_and_releases_on_completion() {
    let spool = TempDir::new("quota");
    let server = start_server(&spool, 1, 1, 64);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let spec = JobSpec::Session {
        scenario: scenario(3),
        trials: 64,
        seed: 5,
    };
    let first = client.submit(spec.clone()).expect("first submit");
    let Response::Accepted { job } = first else {
        panic!("expected Accepted, got {first:?}");
    };

    // The second submission must be refused by name — never silently
    // dropped, never queued past the quota.
    let second = client.submit(spec.clone()).expect("second submit");
    let Response::Busy { in_flight, quota } = second else {
        panic!("expected Busy, got {second:?}");
    };
    assert_eq!((in_flight, quota), (1, 1));

    // Completion releases the slot.
    let (done, _) = client.wait_done(job).expect("first job finishes");
    assert!(matches!(done, Response::Done { .. }));
    let third = client.submit(spec).expect("third submit");
    assert!(
        matches!(third, Response::Accepted { .. }),
        "slot must be free after Done, got {third:?}"
    );
}

#[test]
fn cancellation_stops_scheduling_and_survives_in_the_spool() {
    let spool = TempDir::new("cancel");
    let server = start_server(&spool, 1, 4, 2);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // A long job keeps the single worker busy while we cancel the second.
    let long = client
        .submit(JobSpec::Session {
            scenario: scenario(21),
            trials: 64,
            seed: 1,
        })
        .expect("long submit");
    let Response::Accepted { job: long_job } = long else {
        panic!("expected Accepted, got {long:?}");
    };
    let victim = client
        .submit(JobSpec::Session {
            scenario: scenario(22),
            trials: 64,
            seed: 2,
        })
        .expect("victim submit");
    let Response::Accepted { job: victim_job } = victim else {
        panic!("expected Accepted, got {victim:?}");
    };

    client
        .send(&Request::Cancel { job: victim_job })
        .expect("cancel sends");
    let mut cancelled = false;
    // Snapshots of the long job may interleave before the answer.
    for _ in 0..64 {
        match client.recv().expect("response") {
            Response::Cancelled { job } => {
                assert_eq!(job, victim_job);
                cancelled = true;
                break;
            }
            Response::Snapshot { .. } | Response::Done { .. } => continue,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(cancelled, "cancel must be acknowledged");

    let victim_dir = spool.0.join(format!("job-{victim_job:010}"));
    assert!(
        victim_dir.join("cancelled.json").exists(),
        "cancellation must be durable"
    );

    // The long job still completes; the victim never produces a result.
    let (done, _) = client.wait_done(long_job).expect("long job finishes");
    assert!(matches!(done, Response::Done { .. }));
    assert!(
        !victim_dir.join("result.json").exists(),
        "a cancelled job must not be finalized"
    );

    // Status reports the cancellation; cancelling an unknown job fails by
    // name.
    client
        .send(&Request::Status { job: victim_job })
        .expect("status sends");
    let status = client.recv().expect("status answered");
    assert!(
        matches!(
            status,
            Response::Status {
                state: JobState::Cancelled,
                ..
            }
        ),
        "expected Cancelled status, got {status:?}"
    );
    client
        .send(&Request::Cancel { job: 999_999 })
        .expect("cancel sends");
    let unknown = client.recv().expect("answered");
    assert!(
        matches!(
            unknown,
            Response::Error {
                kind: ErrorKind::UnknownJob,
                ..
            }
        ),
        "expected UnknownJob, got {unknown:?}"
    );
}

#[test]
fn malformed_truncated_and_oversized_requests_fail_by_name() {
    let spool = TempDir::new("malformed");
    let server = start_server(&spool, 1, 4, 8);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let expect_error = |client: &mut Client, kind: ErrorKind, what: &str| {
        let response = client.recv().expect("server answers");
        let Response::Error { kind: got, .. } = response else {
            panic!("{what}: expected Error, got {response:?}");
        };
        assert_eq!(got, kind, "{what}");
    };

    // Non-JSON garbage.
    client.send_raw("this is not json").expect("sends");
    expect_error(&mut client, ErrorKind::Malformed, "garbage line");

    // Truncated JSON (a prefix of a real request).
    client
        .send_raw("{\"Submit\":{\"job\":{\"Sess")
        .expect("sends");
    expect_error(&mut client, ErrorKind::Malformed, "truncated JSON");

    // Valid JSON that is not a request.
    client.send_raw("{\"Frobnicate\":{}}").expect("sends");
    expect_error(&mut client, ErrorKind::Malformed, "unknown request");

    // An oversized line (past the 1 MiB frame cap) is rejected without
    // buffering it all and without killing the connection.
    let oversized = "x".repeat((1 << 20) + 64);
    client.send_raw(&oversized).expect("sends");
    expect_error(&mut client, ErrorKind::Oversized, "oversized line");

    // The connection survived every error.
    client.send(&Request::Ping).expect("ping sends");
    let pong = client.recv().expect("pong");
    assert!(
        matches!(pong, Response::Pong),
        "expected Pong, got {pong:?}"
    );

    // Non-UTF-8 bytes on a raw socket fail by name too (and the server
    // stays up for the next client).
    let mut raw = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut hello = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut hello)
        .expect("hello line");
    assert!(hello.contains("Hello"), "banner: {hello}");
    raw.write_all(&[0xff, 0xfe, 0x90, b'\n']).expect("writes");
    let mut reply = Vec::new();
    let mut reader = BufReader::new(&mut raw);
    let mut byte = [0u8; 1];
    while reader.read(&mut byte).expect("reads") == 1 && byte[0] != b'\n' {
        reply.push(byte[0]);
    }
    let reply = String::from_utf8(reply).expect("reply is UTF-8");
    assert!(
        reply.contains("Malformed"),
        "expected Malformed error, got {reply}"
    );
}

#[test]
fn sampled_campaigns_are_refused_as_unsupported() {
    let spool = TempDir::new("sampled");
    let server = start_server(&spool, 1, 4, 8);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let mut sampled = campaign(5, 2);
    sampled.workload = CampaignWorkload::Sampled {
        kind: "fig2-histogram".to_string(),
        params: serde::Value::Null,
    };
    let response = client
        .submit(JobSpec::Campaign { campaign: sampled })
        .expect("submit round-trips");
    let Response::Error { kind, message } = response else {
        panic!("expected Error, got {response:?}");
    };
    assert_eq!(kind, ErrorKind::Unsupported);
    assert!(
        message.contains("sampler"),
        "reason must explain the refusal: {message}"
    );

    // The refused submission must not leak its quota slot.
    for _ in 0..4 {
        let ok = client
            .submit(JobSpec::Session {
                scenario: scenario(1),
                trials: 2,
                seed: 0,
            })
            .expect("submit");
        let Response::Accepted { job } = ok else {
            panic!("quota slot leaked: {ok:?}");
        };
        let (done, _) = client.wait_done(job).expect("finishes");
        assert!(matches!(done, Response::Done { .. }));
    }
}

#[test]
fn status_of_unknown_jobs_fails_by_name() {
    let spool = TempDir::new("status");
    let server = start_server(&spool, 1, 4, 8);
    let mut client = Client::connect(server.local_addr()).expect("connects");
    client
        .send(&Request::Status { job: 42 })
        .expect("status sends");
    let response = client.recv().expect("answered");
    assert!(
        matches!(
            response,
            Response::Error {
                kind: ErrorKind::UnknownJob,
                ..
            }
        ),
        "expected UnknownJob, got {response:?}"
    );
}
