//! Crash-chaos suite for `qsdc-serve`: SIGKILL the server process
//! mid-flight, restart it on the same spool, and byte-diff every job's
//! final `result.json` against an uninterrupted single-process drain of
//! the identical job set. Nothing the kill can interrupt — a checkpoint
//! write, a leased shard, a half-lowered job — may change a single output
//! byte or lose a single accepted job.

mod common;

use common::{campaign, scenario, TempDir};
use protocol::engine::{SessionEngine, ShardOutput};
use protocol::env_keys;
use protocol::wire::{JobManifest, JobSpec, JobState, Request, Response, MANIFEST_VERSION};
use serve::spool::{Spool, WorkClaim};
use serve::Client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Shard granularity (= snapshot cadence) used on both the served and the
/// reference side; byte-identity requires the same split.
const SHARD_TRIALS: usize = 4;

/// Kill-window guard: the test waits until at least this many trials have
/// been executed before pulling the plug, so the kill genuinely lands
/// mid-flight.
const KILL_AFTER_TRIALS: u64 = 24;

fn spawn_server(spool: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qsdc-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--spool",
            spool.to_str().expect("utf-8 spool path"),
            "--workers",
            "2",
            "--quota",
            "8",
            "--snapshot-trials",
            &SHARD_TRIALS.to_string(),
        ])
        .env_remove(env_keys::SERVE_ADDR)
        .env_remove(env_keys::SERVE_SPOOL)
        .env_remove(env_keys::SERVE_WORKERS)
        .env_remove(env_keys::SERVE_QUOTA)
        .env_remove(env_keys::SERVE_SNAPSHOT_TRIALS)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("server prints its address");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner has an address")
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparseable banner {banner:?}: {e}"));
    (child, addr)
}

/// The job set both sides run: two session sweeps of different sizes plus
/// a two-point campaign — mixed shapes, one client, deterministic ids.
fn job_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::Session {
            scenario: scenario(101),
            trials: 96,
            seed: 7,
        },
        JobSpec::Session {
            scenario: scenario(102),
            trials: 48,
            seed: 8,
        },
        JobSpec::Campaign {
            campaign: campaign(103, 12),
        },
    ]
}

/// Sum of `trials_done` over the given jobs, via `Status` polls.
fn total_progress(client: &mut Client, jobs: &[u64]) -> u64 {
    let mut total = 0;
    for &job in jobs {
        client.send(&Request::Status { job }).expect("status sends");
        loop {
            match client.recv().expect("status answered") {
                Response::Status {
                    job: j,
                    trials_done,
                    ..
                } if j == job => {
                    total += trials_done;
                    break;
                }
                // Snapshots and completions interleave with the answer.
                Response::Snapshot { .. } | Response::Done { .. } => continue,
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    total
}

/// Polls until every listed job's status is `Done` (answered from the
/// spool once the restarted server finishes the recovered jobs).
fn wait_all_done(addr: SocketAddr, jobs: &[u64], deadline: Duration) {
    let start = Instant::now();
    let mut client = Client::connect(addr).expect("reconnects");
    loop {
        let mut done = 0;
        for &job in jobs {
            client.send(&Request::Status { job }).expect("status sends");
            loop {
                match client.recv().expect("status answered") {
                    Response::Status { job: j, state, .. } if j == job => {
                        if state == JobState::Done {
                            done += 1;
                        }
                        break;
                    }
                    Response::Snapshot { .. } | Response::Done { .. } => continue,
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        if done == jobs.len() {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "jobs not finished after {deadline:?}: {done}/{} done",
            jobs.len()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Drains the same job set in-process, uninterrupted and serial — the
/// reference the killed-and-restarted server must match byte for byte.
fn reference_results(dir: &Path, specs: &[JobSpec], first_id: u64) -> Vec<Vec<u8>> {
    let spool = Spool::open(dir).expect("reference spool opens");
    let engine = SessionEngine::new(0);
    let mut outputs = Vec::new();
    for (offset, spec) in specs.iter().enumerate() {
        let id = first_id + offset as u64;
        let manifest = JobManifest {
            version: MANIFEST_VERSION,
            job: id,
            client: "reference".to_string(),
            spec: spec.clone(),
            shard_trials: SHARD_TRIALS,
        };
        let work = spool.lower(&manifest).expect("reference job lowers");
        loop {
            match work.claim("reference", 60_000).expect("claim succeeds") {
                WorkClaim::Claimed { queue, plan } => {
                    let result = engine
                        .execute_shard(&plan, ShardOutput::Summary)
                        .expect("shard executes");
                    queue.submit(&result).expect("submit succeeds");
                }
                WorkClaim::Wait => panic!("no other workers can hold leases here"),
                WorkClaim::Drained => break,
            }
        }
        spool.finalize(id, &work).expect("reference job finalizes");
        outputs.push(std::fs::read(spool.result_path(id)).expect("reference result"));
    }
    outputs
}

#[test]
fn sigkill_and_restart_finish_every_job_byte_identically() {
    let server_spool = TempDir::new("chaos-spool");
    let reference_spool = TempDir::new("chaos-reference");

    // --- First server: accept the jobs, make some progress, die hard. ---
    let (mut child, addr) = spawn_server(&server_spool.0);
    let mut client = Client::connect(addr).expect("connects");
    let specs = job_specs();
    let mut jobs = Vec::new();
    for spec in &specs {
        let response = client.submit(spec.clone()).expect("submit round-trips");
        let Response::Accepted { job } = response else {
            panic!("expected Accepted, got {response:?}");
        };
        jobs.push(job);
    }

    // A fourth job is cancelled before the kill: the restart must not
    // resurrect it.
    let cancelled = client
        .submit(JobSpec::Session {
            scenario: scenario(104),
            trials: 40,
            seed: 9,
        })
        .expect("submit round-trips");
    let Response::Accepted { job: cancelled_job } = cancelled else {
        panic!("expected Accepted, got {cancelled:?}");
    };
    client
        .send(&Request::Cancel { job: cancelled_job })
        .expect("cancel sends");
    loop {
        match client.recv().expect("cancel answered") {
            Response::Cancelled { job } => {
                assert_eq!(job, cancelled_job);
                break;
            }
            Response::Snapshot { .. } | Response::Done { .. } => continue,
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Let the worker pool get genuinely mid-flight, then SIGKILL.
    let kill_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let progress = total_progress(&mut client, &jobs);
        if progress >= KILL_AFTER_TRIALS {
            break;
        }
        assert!(
            Instant::now() < kill_deadline,
            "server made no progress before the kill window"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("server reaped");
    drop(client);

    // --- Second server: same spool, fresh port; it must finish every
    // accepted job with no client attached. ---
    let (mut child, addr) = spawn_server(&server_spool.0);
    wait_all_done(addr, &jobs, Duration::from_secs(120));
    child.kill().expect("cleanup kill");
    child.wait().expect("server reaped");

    // --- Byte-diff against the uninterrupted reference. ---
    let reference = reference_results(&reference_spool.0, &specs, jobs[0]);
    let server_side = Spool::open(&server_spool.0).expect("server spool reopens");
    for (offset, &job) in jobs.iter().enumerate() {
        let served = std::fs::read(server_side.result_path(job)).expect("served result");
        assert_eq!(
            served, reference[offset],
            "job {job}: killed-and-restarted output differs from the uninterrupted run"
        );
    }

    // The cancelled job stayed cancelled: marker intact, no result, and a
    // rescan does not schedule it.
    let cancelled_dir = server_spool.0.join(format!("job-{cancelled_job:010}"));
    assert!(cancelled_dir.join("cancelled.json").exists());
    assert!(!cancelled_dir.join("result.json").exists());
    let rescanned = server_side.scan().expect("rescan succeeds");
    assert!(
        rescanned.is_empty(),
        "every job is finished or cancelled; nothing should rescan"
    );
}
