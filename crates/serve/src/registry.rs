//! In-memory multiplexing state: which clients are connected, which jobs
//! are live, and in what order workers should try them.
//!
//! The registry is the only mutable shared state of the server; everything
//! durable lives in the [`Spool`](crate::spool::Spool). Its scheduling
//! policy is **fair round-robin across clients**: [`Registry::schedule`]
//! interleaves one job from each client bucket in rotation before moving to
//! anyone's second job, and the rotation origin advances on every call — a
//! tenant with fifty queued campaigns cannot starve a tenant with one
//! scenario.
//!
//! Quotas are enforced here too: a client holds a *slot* per unfinished job
//! ([`Registry::reserve_slot`]); past the quota the server answers
//! [`Busy`](protocol::wire::Response::Busy) instead of queueing unboundedly.
//! Jobs recovered from the spool after a restart belong to no live client
//! (they are scheduled from their own bucket and their results land in the
//! spool for later [`Status`](protocol::wire::Request::Status) polls).

use crate::spool::JobWork;
use protocol::wire::Response;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Where a job's asynchronous responses (snapshots, completion) are
/// written. The server implements this over a shared TCP write half; tests
/// implement it over a vector.
pub trait ResponseSink: Send + Sync {
    /// Delivers one response. Delivery is best-effort: a sink whose client
    /// vanished silently discards (the job itself keeps running — its
    /// result is in the spool).
    fn send(&self, response: &Response);
}

/// One schedulable job, in the fair order chosen by [`Registry::schedule`].
#[derive(Clone)]
pub struct ScheduleEntry {
    /// The job id.
    pub job: u64,
    /// The job's executable queues.
    pub work: Arc<JobWork>,
}

/// Why a cancellation request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was removed from scheduling; mark it in the spool.
    Cancelled,
    /// No live job with this id belongs to the requesting client.
    Unknown,
}

struct JobEntry {
    /// Owning client, or `None` for jobs recovered from the spool.
    client: Option<u64>,
    work: Arc<JobWork>,
    trials_total: u64,
    /// Snapshot cadence in trials (0 disables streaming for the job).
    snapshot_trials: u64,
    /// Trials covered by the last streamed snapshot.
    last_snapshot: u64,
    /// Set by the first worker that sees the job complete; later workers
    /// (and the racing drain of a just-finished queue) skip finalization.
    finalizing: bool,
}

struct ClientEntry {
    /// `None` once the connection dropped; jobs keep running detached.
    sink: Option<Arc<dyn ResponseSink>>,
    /// Unfinished jobs holding quota slots.
    in_flight: usize,
}

#[derive(Default)]
struct State {
    clients: BTreeMap<u64, ClientEntry>,
    jobs: BTreeMap<u64, JobEntry>,
    next_client: u64,
    /// Rotation origin for fair scheduling; advances every `schedule` call.
    cursor: u64,
}

/// The server's shared scheduling state. See the module docs.
#[derive(Default)]
pub struct Registry {
    state: Mutex<State>,
    wake: Condvar,
}

impl Registry {
    /// A fresh registry with no clients or jobs.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Registers a connected client and returns its id.
    pub fn register_client(&self, sink: Arc<dyn ResponseSink>) -> u64 {
        let mut state = self.lock();
        let id = state.next_client;
        state.next_client += 1;
        state.clients.insert(
            id,
            ClientEntry {
                sink: Some(sink),
                in_flight: 0,
            },
        );
        id
    }

    /// Marks a client's connection gone. Its unfinished jobs keep running
    /// (results stay in the spool); the client record disappears once the
    /// last of them finishes.
    pub fn client_gone(&self, client: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.clients.get_mut(&client) {
            entry.sink = None;
            if entry.in_flight == 0 {
                state.clients.remove(&client);
            }
        }
    }

    /// Reserves one quota slot for a submission, or reports
    /// `Err((in_flight, quota))` for a [`Busy`](Response::Busy) answer.
    /// Reserve *before* lowering the job to disk (so two racing submissions
    /// cannot both squeeze under the quota) and release on lowering
    /// failure.
    ///
    /// # Errors
    ///
    /// `Err((in_flight, quota))` when the client is at its quota.
    pub fn reserve_slot(&self, client: u64, quota: usize) -> Result<(), (usize, usize)> {
        let mut state = self.lock();
        let entry = state.clients.get_mut(&client).ok_or((quota, quota))?;
        if entry.in_flight >= quota {
            return Err((entry.in_flight, quota));
        }
        entry.in_flight += 1;
        Ok(())
    }

    /// Returns a reserved slot after a failed lowering.
    pub fn release_slot(&self, client: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.clients.get_mut(&client) {
            entry.in_flight = entry.in_flight.saturating_sub(1);
        }
    }

    /// Adds a lowered job to the schedule and wakes the worker pool.
    /// `client: None` marks a job recovered from the spool.
    pub fn add_job(
        &self,
        job: u64,
        client: Option<u64>,
        work: Arc<JobWork>,
        trials_total: u64,
        snapshot_trials: u64,
    ) {
        let mut state = self.lock();
        state.jobs.insert(
            job,
            JobEntry {
                client,
                work,
                trials_total,
                snapshot_trials,
                last_snapshot: 0,
                finalizing: false,
            },
        );
        drop(state);
        self.wake.notify_all();
    }

    /// The live jobs in fair order: one job per client bucket in rotation
    /// (recovered jobs form their own bucket), then everyone's second job,
    /// and so on. The rotation origin advances each call, so no client is
    /// permanently "first".
    pub fn schedule(&self) -> Vec<ScheduleEntry> {
        let mut state = self.lock();
        // Bucket job ids by owner; the map is ordered, so bucket order (and
        // therefore the whole schedule) is deterministic for a given state.
        let mut buckets: BTreeMap<Option<u64>, Vec<ScheduleEntry>> = BTreeMap::new();
        for (&job, entry) in &state.jobs {
            if entry.finalizing {
                continue;
            }
            buckets
                .entry(entry.client)
                .or_default()
                .push(ScheduleEntry {
                    job,
                    work: Arc::clone(&entry.work),
                });
        }
        let rotation = state.cursor as usize;
        state.cursor = state.cursor.wrapping_add(1);
        drop(state);

        let buckets: Vec<Vec<ScheduleEntry>> = buckets.into_values().collect();
        if buckets.is_empty() {
            return Vec::new();
        }
        let start = rotation % buckets.len();
        let deepest = buckets.iter().map(Vec::len).max().unwrap_or(0);
        let mut order = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
        for depth in 0..deepest {
            for offset in 0..buckets.len() {
                let bucket = &buckets[(start + offset) % buckets.len()];
                if let Some(entry) = bucket.get(depth) {
                    order.push(entry.clone());
                }
            }
        }
        order
    }

    /// The executable work of a live job, if any.
    pub fn job_work(&self, job: u64) -> Option<Arc<JobWork>> {
        self.lock().jobs.get(&job).map(|e| Arc::clone(&e.work))
    }

    /// A live job's total trial count.
    pub fn job_trials_total(&self, job: u64) -> Option<u64> {
        self.lock().jobs.get(&job).map(|e| e.trials_total)
    }

    /// The sink of the client owning `job`, when both are still around.
    pub fn sink_for_job(&self, job: u64) -> Option<Arc<dyn ResponseSink>> {
        let state = self.lock();
        let client = state.jobs.get(&job)?.client?;
        state.clients.get(&client)?.sink.clone()
    }

    /// True exactly once per job: the calling worker owns finalization
    /// (merging and writing `result.json`). Returns `false` for unknown
    /// jobs and for jobs someone else is already finalizing.
    pub fn begin_finalize(&self, job: u64) -> bool {
        let mut state = self.lock();
        match state.jobs.get_mut(&job) {
            Some(entry) if !entry.finalizing => {
                entry.finalizing = true;
                true
            }
            _ => false,
        }
    }

    /// Undoes [`begin_finalize`](Self::begin_finalize) after a finalization
    /// failure, so another worker can retry.
    pub fn abort_finalize(&self, job: u64) {
        let mut state = self.lock();
        if let Some(entry) = state.jobs.get_mut(&job) {
            entry.finalizing = false;
        }
    }

    /// Removes a finished job, releases its quota slot, and returns the
    /// owner's sink (if the client is still connected) for the final
    /// [`Done`](Response::Done) delivery.
    pub fn finish_job(&self, job: u64) -> Option<Arc<dyn ResponseSink>> {
        let mut state = self.lock();
        let entry = state.jobs.remove(&job)?;
        let client = entry.client?;
        let client_entry = state.clients.get_mut(&client)?;
        client_entry.in_flight = client_entry.in_flight.saturating_sub(1);
        let sink = client_entry.sink.clone();
        if client_entry.sink.is_none() && client_entry.in_flight == 0 {
            state.clients.remove(&client);
        }
        sink
    }

    /// Cancels a live job owned by `client`: removes it from scheduling and
    /// releases its slot. Jobs owned by other clients (or by no client) are
    /// reported [`Unknown`](CancelOutcome::Unknown) — ids are not leaked
    /// across tenants.
    pub fn cancel(&self, job: u64, client: u64) -> CancelOutcome {
        let mut state = self.lock();
        let owned = matches!(state.jobs.get(&job), Some(entry) if entry.client == Some(client));
        if !owned {
            return CancelOutcome::Unknown;
        }
        state.jobs.remove(&job);
        if let Some(client_entry) = state.clients.get_mut(&client) {
            client_entry.in_flight = client_entry.in_flight.saturating_sub(1);
        }
        CancelOutcome::Cancelled
    }

    /// Snapshot gate: true when `trials_done` crossed the job's cadence
    /// since the last streamed snapshot (and records the new watermark).
    pub fn snapshot_due(&self, job: u64, trials_done: u64) -> bool {
        let mut state = self.lock();
        let Some(entry) = state.jobs.get_mut(&job) else {
            return false;
        };
        if entry.snapshot_trials == 0 || trials_done >= entry.trials_total {
            // Completion is announced by `Done`, not a trailing snapshot.
            return false;
        }
        if trials_done >= entry.last_snapshot + entry.snapshot_trials {
            entry.last_snapshot = trials_done;
            true
        } else {
            false
        }
    }

    /// Parks a worker until new work arrives or `timeout` passes (leases
    /// expire on wall time, so workers must re-poll even without new
    /// submissions).
    pub fn wait_for_work(&self, timeout: Duration) {
        let state = self.lock();
        let _unused = self
            .wake
            .wait_timeout(state, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
    }

    /// Number of live jobs (diagnostics and tests).
    pub fn live_jobs(&self) -> usize {
        self.lock().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::engine::{Scenario, SessionEngine, ShardOutput, ShardQueue};
    use protocol::identity::IdentityPair;
    use protocol::SessionConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    struct NullSink;

    impl ResponseSink for NullSink {
        fn send(&self, _response: &Response) {}
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            TempDir(
                std::env::temp_dir()
                    .join(format!("ua-di-qsdc-registry-{tag}-{}", std::process::id())),
            )
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_scenario() -> Scenario {
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(16)
            .build()
            .expect("config builds");
        let mut rng = StdRng::seed_from_u64(1);
        Scenario::new(config, IdentityPair::generate(2, &mut rng))
    }

    fn tiny_work(dir: &std::path::Path, tag: u64) -> Arc<JobWork> {
        let plan = SessionEngine::new(tag).plan(&tiny_scenario(), 2);
        let queue = ShardQueue::init(
            dir.join(format!("job-{tag}")),
            &plan,
            2,
            ShardOutput::Summary,
        )
        .expect("queue inits");
        Arc::new(JobWork::Session { queue })
    }

    /// The schedule interleaves clients — one job each in rotation before
    /// anyone's second — and the rotation origin advances per call.
    #[test]
    fn schedule_is_fair_round_robin_with_rotating_origin() {
        let dir = TempDir::new("fairness");
        let registry = Registry::new();
        let a = registry.register_client(Arc::new(NullSink));
        let b = registry.register_client(Arc::new(NullSink));
        // Client a holds jobs 1 and 2; client b holds job 3.
        registry.add_job(1, Some(a), tiny_work(&dir.0, 1), 2, 0);
        registry.add_job(2, Some(a), tiny_work(&dir.0, 2), 2, 0);
        registry.add_job(3, Some(b), tiny_work(&dir.0, 3), 2, 0);

        let order = |entries: Vec<ScheduleEntry>| -> Vec<u64> {
            entries.into_iter().map(|e| e.job).collect()
        };
        // Rotation 0 starts at a's bucket; b still gets its job before a's
        // second one.
        assert_eq!(order(registry.schedule()), vec![1, 3, 2]);
        // Rotation 1 starts at b's bucket: a cannot monopolize the front.
        assert_eq!(order(registry.schedule()), vec![3, 1, 2]);
        assert_eq!(order(registry.schedule()), vec![1, 3, 2]);
    }

    /// Quota slots are reserved atomically and released by completion and
    /// cancellation.
    #[test]
    fn quota_slots_reserve_and_release() {
        let dir = TempDir::new("quota");
        let registry = Registry::new();
        let client = registry.register_client(Arc::new(NullSink));
        assert_eq!(registry.reserve_slot(client, 2), Ok(()));
        assert_eq!(registry.reserve_slot(client, 2), Ok(()));
        assert_eq!(registry.reserve_slot(client, 2), Err((2, 2)));
        registry.add_job(1, Some(client), tiny_work(&dir.0, 1), 2, 0);
        registry.add_job(2, Some(client), tiny_work(&dir.0, 2), 2, 0);

        // Finishing one job frees one slot.
        assert!(registry.begin_finalize(1));
        assert!(!registry.begin_finalize(1), "finalize is exactly-once");
        assert!(registry.finish_job(1).is_some());
        assert_eq!(registry.reserve_slot(client, 2), Ok(()));

        // Cancelling is identity-checked and frees the slot too.
        let intruder = registry.register_client(Arc::new(NullSink));
        assert_eq!(registry.cancel(2, intruder), CancelOutcome::Unknown);
        assert_eq!(registry.cancel(2, client), CancelOutcome::Cancelled);
        assert_eq!(registry.reserve_slot(client, 2), Ok(()));
    }
}
