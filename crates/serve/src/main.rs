//! `qsdc-serve` — the multi-tenant session service daemon.
//!
//! Configuration comes from `UA_DI_QSDC_SERVE_*` environment variables
//! (see [`protocol::env_keys`]) with flag overrides:
//!
//! ```text
//! qsdc-serve [--addr HOST:PORT] [--spool DIR] [--workers N]
//!            [--quota N] [--snapshot-trials N]
//! ```
//!
//! The process serves until killed. Killing it — even with SIGKILL — is
//! safe: every accepted job lives in the spool, and the next start resumes
//! and finishes all unfinished jobs byte-identically.

use protocol::env_keys;
use serve::{Server, ServerConfig};
use std::env;
use std::path::PathBuf;
use std::process;
use std::thread;
use std::time::Duration;

fn main() {
    let config = match parse_config() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("qsdc-serve: {message}");
            process::exit(2);
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("qsdc-serve: could not start: {error}");
            process::exit(1);
        }
    };
    // Flushed line by line so wrappers (tests, scripts) can scrape the port.
    println!("qsdc-serve listening on {}", server.local_addr());
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

fn parse_config() -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };

    if let Ok(addr) = env::var(env_keys::SERVE_ADDR) {
        config.addr = addr;
    }
    if let Ok(spool) = env::var(env_keys::SERVE_SPOOL) {
        config.spool_dir = PathBuf::from(spool);
    }
    if let Ok(workers) = env::var(env_keys::SERVE_WORKERS) {
        config.workers = parse_count(env_keys::SERVE_WORKERS, &workers)?;
    }
    if let Ok(quota) = env::var(env_keys::SERVE_QUOTA) {
        config.quota = parse_count(env_keys::SERVE_QUOTA, &quota)?;
    }
    if let Ok(trials) = env::var(env_keys::SERVE_SNAPSHOT_TRIALS) {
        config.snapshot_trials = trials.parse().map_err(|_| {
            format!(
                "{} must be an integer, got {trials:?}",
                env_keys::SERVE_SNAPSHOT_TRIALS
            )
        })?;
    }

    let mut args = env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_for = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value_for("--addr")?,
            "--spool" => config.spool_dir = PathBuf::from(value_for("--spool")?),
            "--workers" => config.workers = parse_count("--workers", &value_for("--workers")?)?,
            "--quota" => config.quota = parse_count("--quota", &value_for("--quota")?)?,
            "--snapshot-trials" => {
                let value = value_for("--snapshot-trials")?;
                config.snapshot_trials = value
                    .parse()
                    .map_err(|_| format!("--snapshot-trials must be an integer, got {value:?}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: qsdc-serve [--addr HOST:PORT] [--spool DIR] [--workers N] \
                     [--quota N] [--snapshot-trials N]"
                );
                process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(config)
}

fn parse_count(name: &str, value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(parsed) if parsed > 0 => Ok(parsed),
        _ => Err(format!("{name} must be a positive integer, got {value:?}")),
    }
}
