//! `qsdc-serve`: a multi-tenant session service over the shard-queue fabric.
//!
//! The execution fabric (shard plans, the work-stealing
//! [`ShardQueue`](protocol::engine::ShardQueue), campaigns) is fleet-grade
//! but, before this crate, reachable only through
//! one-shot CLIs. `qsdc-serve` turns it into a long-lived daemon: clients
//! connect over plain TCP, submit [`Scenario`](protocol::engine::Scenario)
//! and [`Campaign`](protocol::engine::Campaign) jobs as newline-delimited
//! JSON ([`protocol::wire`]), and the server multiplexes every job onto one
//! shared worker pool:
//!
//! - **Fair round-robin across clients.** The scheduler interleaves clients,
//!   not jobs: a tenant with fifty queued jobs cannot starve a tenant with
//!   one.
//! - **Quotas with backpressure.** Each client may hold a bounded number of
//!   unfinished jobs; a submission past the quota is answered with an
//!   explicit [`Busy`](protocol::wire::Response::Busy) — never silently
//!   dropped.
//! - **Streaming snapshots.** Session jobs stream incremental
//!   [`TrialSummary`](protocol::engine::TrialSummary) snapshots roughly
//!   every `snapshot_trials` completed trials (the merged contiguous prefix,
//!   byte-identical to a local run of the same prefix).
//! - **Cancellation.** A cancelled job stops being scheduled and is marked
//!   in the spool so a restart does not resurrect it.
//! - **Crash-safe by construction.** Every accepted job is lowered onto a
//!   [`ShardQueue`](protocol::engine::ShardQueue) under the server's spool
//!   directory *before* it is
//!   acknowledged. The queue's checkpoint/lease/merge machinery is the
//!   persistence layer — a SIGKILLed server rescans the spool on restart and
//!   finishes every unfinished job **byte-identically** to an uninterrupted
//!   run.
//!
//! The binary is `qsdc-serve` (see `src/main.rs`); the library exposes the
//! same server embeddable in-process (the `serve_load` load generator and
//! the chaos tests use it), plus a minimal blocking [`client`] for tests and
//! tooling. Protocol grammar and semantics: `docs/service.md`.
#![forbid(unsafe_code)]

pub mod client;
pub mod registry;
pub mod server;
pub mod spool;

pub use client::Client;
pub use registry::{Registry, ScheduleEntry};
pub use server::{Server, ServerConfig};
pub use spool::{JobOutcome, JobWork, Spool, SpoolError};
