//! The TCP server: accept loop, per-connection request handling, and the
//! shared worker pool that drains every live job's queues.
//!
//! One thread per connection parses newline-delimited
//! [`protocol::wire::Request`] lines (with an explicit size cap —
//! an oversized or malformed line earns an
//! [`Error`](protocol::wire::Response::Error) response, never a panic or a
//! dropped connection); `workers` pool threads repeatedly ask the
//! [`Registry`] for the fair schedule, claim one shard, execute it with a
//! lease [heartbeat](protocol::engine::ShardQueue::heartbeat) held (so a
//! slow shard is never stolen from a live worker), submit, stream a
//! snapshot if the job crossed its cadence, and finalize jobs whose last
//! shard just landed.
//!
//! All durable state lives in the [`Spool`]; the process can be SIGKILLed
//! at any instant and a restarted server ([`Server::start`] rescans the
//! spool) finishes every accepted job byte-identically.

use crate::registry::{CancelOutcome, Registry, ResponseSink};
use crate::spool::{JobOutcome, JobWork, Spool, SpoolError, WorkClaim};
use protocol::engine::{SessionEngine, ShardOutput, ShardPlan, ShardQueue};
use protocol::wire::{
    ErrorKind, JobManifest, JobSpec, JobState, Request, Response, MANIFEST_VERSION, WIRE_VERSION,
};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Hard cap on one request line's length. A line past this is answered
/// with [`ErrorKind::Oversized`] and discarded up to its newline; the
/// connection survives.
pub const MAX_FRAME: usize = 1 << 20;

/// Tunables for one server instance. All fields have serving defaults; the
/// binary overrides them from `UA_DI_QSDC_SERVE_*` (see
/// [`protocol::env_keys`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Spool directory for job state (created if absent).
    pub spool_dir: PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Max unfinished jobs per client before [`Response::Busy`].
    pub quota: usize,
    /// Streaming-snapshot cadence in trials (also the shard granularity
    /// jobs are split at); `0` disables streaming.
    pub snapshot_trials: usize,
    /// Shard lease length in milliseconds (heartbeats renew it while a
    /// worker is alive).
    pub lease_ms: u64,
    /// Worker re-poll interval when nothing is claimable.
    pub poll_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            spool_dir: PathBuf::from("serve-spool"),
            workers: 2,
            quota: 4,
            snapshot_trials: 256,
            lease_ms: 5_000,
            poll_ms: 25,
        }
    }
}

/// A running server. Threads are detached: the server serves until the
/// process exits (the crash-consistency story makes a SIGKILL an ordinary
/// shutdown).
pub struct Server {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds, rescans the spool (recovering every unfinished job), and
    /// spawns the worker pool plus the accept loop.
    ///
    /// # Errors
    ///
    /// Bind failures, or a damaged spool (reported loudly rather than
    /// silently skipping jobs).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let spool = Spool::open(&config.spool_dir).map_err(io_other)?;
        let recovered = spool.scan().map_err(io_other)?;
        let next_job = spool.next_job_id().map_err(io_other)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            registry: Registry::new(),
            spool,
            config,
            next_job: AtomicU64::new(next_job),
        });
        for (manifest, work) in recovered {
            let work = Arc::new(work);
            let trials_total = work.progress().map_err(io_other)?.1;
            // Recovered jobs have no connected client: no snapshots stream.
            inner
                .registry
                .add_job(manifest.job, None, work, trials_total, 0);
        }

        for index in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("serve-worker-{index}"))
                .spawn(move || worker_loop(&inner, index))?;
        }
        {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&inner, listener))?;
        }
        Ok(Server { local_addr, inner })
    }

    /// The bound address (resolves ephemeral ports for tests/tools).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of jobs currently live in the scheduler.
    pub fn live_jobs(&self) -> usize {
        self.inner.registry.live_jobs()
    }
}

struct Inner {
    registry: Registry,
    spool: Spool,
    config: ServerConfig,
    next_job: AtomicU64,
}

fn io_other(error: SpoolError) -> io::Error {
    io::Error::other(error.to_string())
}

// ------------------------------------------------------------ worker pool --

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    let worker = format!("serve-worker-{index}");
    loop {
        let schedule = inner.registry.schedule();
        let mut claimed = false;
        for entry in schedule {
            match entry.work.claim(&worker, inner.config.lease_ms) {
                Ok(WorkClaim::Claimed { queue, plan }) => {
                    claimed = true;
                    run_shard(inner, &worker, entry.job, &entry.work, &queue, &plan);
                    // Back to the fair schedule rather than draining this
                    // job's queue to exhaustion.
                    break;
                }
                Ok(WorkClaim::Wait) => {}
                Ok(WorkClaim::Drained) => try_finalize(inner, entry.job, &entry.work),
                Err(error) => fail_job(inner, entry.job, &error),
            }
        }
        if !claimed {
            inner
                .registry
                .wait_for_work(Duration::from_millis(inner.config.poll_ms.max(1)));
        }
    }
}

/// Executes one claimed shard under a lease heartbeat, submits it, streams
/// a snapshot if the job crossed its cadence, and finalizes a completed
/// job.
fn run_shard(
    inner: &Arc<Inner>,
    worker: &str,
    job: u64,
    work: &Arc<JobWork>,
    queue: &ShardQueue,
    plan: &ShardPlan,
) {
    let beat = queue.heartbeat(worker, plan, inner.config.lease_ms);
    // The master seed is irrelevant here: a shard plan carries its own
    // derived trial seeds. Every spooled queue is initialized with summary
    // payloads (see Spool::lower).
    let engine = SessionEngine::new(0);
    let result = match engine.execute_shard(plan, ShardOutput::Summary) {
        Ok(result) => result,
        Err(error) => {
            drop(beat);
            fail_job(inner, job, &error);
            return;
        }
    };
    drop(beat);
    if let Err(error) = queue.submit(&result) {
        fail_job(inner, job, &error);
        return;
    }

    if matches!(work.as_ref(), JobWork::Session { .. }) {
        stream_snapshot(inner, job, work, queue);
    }
    try_finalize(inner, job, work);
}

/// Streams an incremental summary if the job just crossed its snapshot
/// cadence and its client is still connected.
fn stream_snapshot(inner: &Arc<Inner>, job: u64, work: &Arc<JobWork>, queue: &ShardQueue) {
    let Ok((trials_done, trials_total)) = work.progress() else {
        return;
    };
    if !inner.registry.snapshot_due(job, trials_done) {
        return;
    }
    let Some(sink) = inner.registry.sink_for_job(job) else {
        return;
    };
    match inner.spool.snapshot(queue) {
        // A fold that already covers the whole run is not streamed: that
        // state is announced by `Done` (racing workers may finish the last
        // shard between the cadence gate and the fold).
        Ok(Some((prefix_trials, _))) if prefix_trials >= trials_total => {}
        Ok(Some((prefix_trials, summary))) => sink.send(&Response::Snapshot {
            job,
            trials_done: prefix_trials,
            trials_total,
            summary,
        }),
        Ok(None) => {}
        Err(error) => eprintln!("serve: snapshot of job {job} failed: {error}"),
    }
}

/// Merges and persists a job whose every shard is done, exactly once.
fn try_finalize(inner: &Arc<Inner>, job: u64, work: &Arc<JobWork>) {
    match work.complete() {
        Ok(true) => {}
        Ok(false) => return,
        Err(error) => {
            fail_job(inner, job, &error);
            return;
        }
    }
    if !inner.registry.begin_finalize(job) {
        return;
    }
    match inner.spool.finalize(job, work) {
        Ok(outcome) => {
            let sink = inner.registry.finish_job(job);
            if let Some(sink) = sink {
                let (summary, report) = match outcome {
                    JobOutcome::Session(summary) => (Some(summary), None),
                    JobOutcome::Campaign(report) => (None, Some(report)),
                };
                sink.send(&Response::Done {
                    job,
                    summary,
                    report,
                });
            }
        }
        Err(error) => {
            // Leave the job on disk (a restart can retry the merge); stop
            // scheduling it and tell the owner.
            inner.registry.abort_finalize(job);
            fail_job(inner, job, &error);
        }
    }
}

/// Removes a failing job from the schedule and reports the failure to its
/// owner. The job directory stays in the spool, so an operator (or a
/// restart) can diagnose and resume it.
fn fail_job(inner: &Arc<Inner>, job: u64, error: &dyn std::fmt::Display) {
    eprintln!("serve: job {job} failed: {error}");
    if let Some(sink) = inner.registry.finish_job(job) {
        sink.send(&Response::Error {
            kind: ErrorKind::Internal,
            message: format!("job {job} failed: {error}"),
        });
    }
}

// ------------------------------------------------------------ connections --

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let inner = Arc::clone(inner);
                let spawned = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(&inner, stream));
                if let Err(error) = spawned {
                    eprintln!("serve: could not spawn connection thread: {error}");
                }
            }
            Err(error) => eprintln!("serve: accept failed: {error}"),
        }
    }
}

/// A shared, mutex-serialized write half: request replies (from the
/// connection thread) and streamed snapshots (from workers) interleave
/// whole lines, never bytes.
struct TcpSink {
    stream: Mutex<TcpStream>,
}

impl ResponseSink for TcpSink {
    fn send(&self, response: &Response) {
        let mut line = serde::json::to_string(response);
        line.push('\n');
        let mut stream = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        // Best-effort: a vanished client does not stop its jobs.
        let _ = stream.write_all(line.as_bytes());
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(error) => {
            eprintln!("serve: could not clone connection: {error}");
            return;
        }
    };
    let sink: Arc<dyn ResponseSink> = Arc::new(TcpSink {
        stream: Mutex::new(write_half),
    });
    let client = inner.registry.register_client(Arc::clone(&sink));
    sink.send(&Response::Hello {
        server: "qsdc-serve".to_string(),
        wire_version: WIRE_VERSION,
        quota: inner.config.quota,
        snapshot_trials: inner.config.snapshot_trials,
    });

    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_FRAME) {
            Ok(Frame::Eof) | Err(_) => break,
            Ok(Frame::Oversized) => sink.send(&Response::Error {
                kind: ErrorKind::Oversized,
                message: format!("request line exceeds {MAX_FRAME} bytes"),
            }),
            Ok(Frame::Line(bytes)) => {
                let Ok(text) = String::from_utf8(bytes) else {
                    sink.send(&Response::Error {
                        kind: ErrorKind::Malformed,
                        message: "request line is not UTF-8".to_string(),
                    });
                    continue;
                };
                if text.trim().is_empty() {
                    continue;
                }
                match serde::json::from_str::<Request>(&text) {
                    Ok(request) => dispatch(inner, client, &sink, request),
                    Err(error) => sink.send(&Response::Error {
                        kind: ErrorKind::Malformed,
                        message: format!("unparseable request: {error}"),
                    }),
                }
            }
        }
    }
    inner.registry.client_gone(client);
}

fn dispatch(inner: &Arc<Inner>, client: u64, sink: &Arc<dyn ResponseSink>, request: Request) {
    match request {
        Request::Ping => sink.send(&Response::Pong),
        Request::Submit { job } => submit(inner, client, sink, job),
        Request::Cancel { job } => cancel(inner, client, sink, job),
        Request::Status { job } => status(inner, sink, job),
    }
}

fn submit(inner: &Arc<Inner>, client: u64, sink: &Arc<dyn ResponseSink>, spec: JobSpec) {
    if let Err((in_flight, quota)) = inner.registry.reserve_slot(client, inner.config.quota) {
        sink.send(&Response::Busy { in_flight, quota });
        return;
    }
    let job = inner.next_job.fetch_add(1, Ordering::Relaxed);
    let manifest = JobManifest {
        version: MANIFEST_VERSION,
        job,
        client: format!("client-{client}"),
        spec,
        shard_trials: inner.config.snapshot_trials.max(1),
    };
    let lowered = inner
        .spool
        .lower(&manifest)
        .and_then(|work| work.progress().map(|(_, total)| (work, total)));
    match lowered {
        Ok((work, trials_total)) => {
            let snapshot_trials = match work {
                JobWork::Session { .. } => inner.config.snapshot_trials as u64,
                // Campaign reports fold per-point; no incremental stream.
                JobWork::Campaign { .. } => 0,
            };
            inner.registry.add_job(
                job,
                Some(client),
                Arc::new(work),
                trials_total,
                snapshot_trials,
            );
            sink.send(&Response::Accepted { job });
        }
        Err(SpoolError::Unsupported { reason }) => {
            inner.registry.release_slot(client);
            sink.send(&Response::Error {
                kind: ErrorKind::Unsupported,
                message: reason,
            });
        }
        Err(error) => {
            inner.registry.release_slot(client);
            sink.send(&Response::Error {
                kind: ErrorKind::Internal,
                message: format!("could not spool job: {error}"),
            });
        }
    }
}

fn cancel(inner: &Arc<Inner>, client: u64, sink: &Arc<dyn ResponseSink>, job: u64) {
    match inner.registry.cancel(job, client) {
        CancelOutcome::Cancelled => {
            if let Err(error) = inner.spool.mark_cancelled(job) {
                eprintln!("serve: could not mark job {job} cancelled: {error}");
            }
            sink.send(&Response::Cancelled { job });
        }
        CancelOutcome::Unknown => sink.send(&Response::Error {
            kind: ErrorKind::UnknownJob,
            message: format!("no live job {job} owned by this client"),
        }),
    }
}

fn status(inner: &Arc<Inner>, sink: &Arc<dyn ResponseSink>, job: u64) {
    if let Some(work) = inner.registry.job_work(job) {
        match work.progress() {
            Ok((trials_done, trials_total)) => sink.send(&Response::Status {
                job,
                state: JobState::Running,
                trials_done,
                trials_total,
            }),
            Err(error) => sink.send(&Response::Error {
                kind: ErrorKind::Internal,
                message: format!("could not read job {job} progress: {error}"),
            }),
        }
        return;
    }
    match inner.spool.lookup(job) {
        Ok(crate::spool::SpoolLookup::Done { manifest }) => {
            let total = spec_trials(inner, &manifest);
            sink.send(&Response::Status {
                job,
                state: JobState::Done,
                trials_done: total,
                trials_total: total,
            });
        }
        Ok(crate::spool::SpoolLookup::Cancelled { manifest }) => {
            let total = spec_trials(inner, &manifest);
            sink.send(&Response::Status {
                job,
                state: JobState::Cancelled,
                trials_done: 0,
                trials_total: total,
            });
        }
        Ok(crate::spool::SpoolLookup::InFlight { manifest }) => {
            // Lowered but not scheduled (e.g. a failed job awaiting restart).
            let progress = inner
                .spool
                .reopen(&manifest)
                .and_then(|work| work.progress());
            let (trials_done, trials_total) = progress.unwrap_or((0, 0));
            sink.send(&Response::Status {
                job,
                state: JobState::Running,
                trials_done,
                trials_total,
            });
        }
        Ok(crate::spool::SpoolLookup::Absent) => sink.send(&Response::Error {
            kind: ErrorKind::UnknownJob,
            message: format!("no job {job} in this server's spool"),
        }),
        Err(error) => sink.send(&Response::Error {
            kind: ErrorKind::Internal,
            message: format!("could not look up job {job}: {error}"),
        }),
    }
}

/// Total trials a manifest's spec describes, for status answers about jobs
/// whose queues are gone or not worth reopening.
fn spec_trials(inner: &Arc<Inner>, manifest: &JobManifest) -> u64 {
    match &manifest.spec {
        JobSpec::Session { trials, .. } => *trials as u64,
        JobSpec::Campaign { campaign } => inner
            .spool
            .reopen(manifest)
            .and_then(|work| work.progress())
            .map(|(_, total)| total)
            .unwrap_or_else(|_| {
                campaign
                    .expand()
                    .map(|points| points.iter().map(|p| p.trials as u64).sum())
                    .unwrap_or(0)
            }),
    }
}

// ---------------------------------------------------------------- framing --

/// One parsed read from a connection.
pub enum Frame {
    /// A complete line (without its trailing newline).
    Line(Vec<u8>),
    /// The line exceeded the cap; it was discarded up to its newline.
    Oversized,
    /// The peer closed the connection (a truncated trailing line counts:
    /// the request can never complete).
    Eof,
}

/// Reads one newline-terminated frame with a hard length cap. Never
/// allocates beyond `max + one buffer` for a hostile line.
///
/// # Errors
///
/// Underlying socket read errors.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(Frame::Eof);
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if line.len() > max {
                return Ok(Frame::Oversized);
            }
            return Ok(Frame::Line(line));
        }
        line.extend_from_slice(buf);
        let chunk = buf.len();
        reader.consume(chunk);
        if line.len() > max {
            return discard_to_newline(reader);
        }
    }
}

/// Consumes the rest of an over-long line so the connection can continue
/// at the next frame boundary.
fn discard_to_newline(reader: &mut impl BufRead) -> io::Result<Frame> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(Frame::Eof);
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return Ok(Frame::Oversized);
        }
        let chunk = buf.len();
        reader.consume(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Frames split across buffer boundaries reassemble; the cap rejects a
    /// hostile line without buffering it and resynchronizes at its newline.
    #[test]
    fn read_frame_reassembles_caps_and_resynchronizes() {
        let mut input = Cursor::new(b"short\n".to_vec());
        let Frame::Line(line) = read_frame(&mut input, 16).expect("reads") else {
            panic!("expected a line");
        };
        assert_eq!(line, b"short");

        // A line one past the cap is Oversized; the following frame is
        // still delivered intact.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&[b'x'; 17]);
        hostile.push(b'\n');
        hostile.extend_from_slice(b"next\n");
        let mut input = Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut input, 16).expect("reads"),
            Frame::Oversized
        ));
        let Frame::Line(line) = read_frame(&mut input, 16).expect("reads") else {
            panic!("expected the next line");
        };
        assert_eq!(line, b"next");
        assert!(matches!(
            read_frame(&mut input, 16).expect("reads"),
            Frame::Eof
        ));

        // A line exactly at the cap still passes.
        let mut exact = vec![b'y'; 16];
        exact.push(b'\n');
        let mut input = Cursor::new(exact);
        assert!(matches!(
            read_frame(&mut input, 16).expect("reads"),
            Frame::Line(line) if line.len() == 16
        ));

        // A truncated trailing line (no newline before EOF) is EOF: the
        // request can never complete.
        let mut input = Cursor::new(b"{\"Ping\"".to_vec());
        assert!(matches!(
            read_frame(&mut input, 16).expect("reads"),
            Frame::Eof
        ));
    }
}
