//! The server's spool directory: the durable side of every accepted job.
//!
//! A job is acknowledged only after it has been **lowered** onto disk under
//! `spool/job-NNNNNNNNNN/`:
//!
//! ```text
//! spool/
//!   job-0000000001/
//!     job.json         the JobManifest (written last: its existence means
//!                      the directory is fully lowered)
//!     queue/           session jobs: the ShardQueue draining the plan
//!     campaign/        campaign jobs: a CampaignRun (one queue per point)
//!     result.json      the final merged output, written atomically once
//!     cancelled.json   cancellation marker; a restart skips this job
//! ```
//!
//! The shard queue **is** the persistence layer: every claim, lease and
//! completed shard lives in its checkpoint, so a SIGKILLed server loses at
//! most the leased-but-unsubmitted shards, and a restarted server rescans
//! the spool ([`Spool::scan`]), recovers the expired leases, and finishes
//! every job byte-identically to an uninterrupted run.

use protocol::engine::{
    Campaign, CampaignError, CampaignReport, CampaignRun, CampaignWorkload, ClaimOutcome,
    QueueError, SessionEngine, ShardOutput, ShardPayload, ShardPlan, ShardQueue, SlotState,
    TrialSummary, TrialSummaryBuilder,
};
use protocol::wire::{JobManifest, JobSpec};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a job directory.
pub const MANIFEST_FILE: &str = "job.json";
/// Name of the final-result file inside a job directory.
pub const RESULT_FILE: &str = "result.json";
/// Name of the cancellation marker inside a job directory.
pub const CANCELLED_FILE: &str = "cancelled.json";
/// Name of a session job's queue directory.
pub const QUEUE_DIR: &str = "queue";
/// Name of a campaign job's campaign directory.
pub const CAMPAIGN_DIR: &str = "campaign";

/// Why a spool operation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpoolError {
    /// An I/O operation failed on `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error rendering.
        message: String,
    },
    /// A manifest file held invalid JSON or an unsupported version.
    Manifest {
        /// The offending manifest.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// A shard-queue operation failed.
    Queue(QueueError),
    /// A campaign operation failed.
    Campaign(String),
    /// The job is well-formed but not servable (e.g. a sampled-workload
    /// campaign, which needs a process-local sampler).
    Unsupported {
        /// Why the job cannot be served.
        reason: String,
    },
}

impl fmt::Display for SpoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpoolError::Io { path, message } => {
                write!(f, "I/O error on {}: {message}", path.display())
            }
            SpoolError::Manifest { path, message } => {
                write!(f, "bad job manifest {}: {message}", path.display())
            }
            SpoolError::Queue(error) => write!(f, "queue error: {error}"),
            SpoolError::Campaign(message) => write!(f, "campaign error: {message}"),
            SpoolError::Unsupported { reason } => write!(f, "unsupported job: {reason}"),
        }
    }
}

impl std::error::Error for SpoolError {}

impl From<QueueError> for SpoolError {
    fn from(error: QueueError) -> Self {
        SpoolError::Queue(error)
    }
}

impl From<CampaignError> for SpoolError {
    fn from(error: CampaignError) -> Self {
        SpoolError::Campaign(error.to_string())
    }
}

/// The executable form of one lowered job: the on-disk queues a worker
/// claims shards from. Shared across the worker pool behind an `Arc`.
/// (Size skew between variants is irrelevant: one allocation per job.)
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum JobWork {
    /// A single-scenario sweep draining one queue.
    Session {
        /// The queue under `job-N/queue/`.
        queue: ShardQueue,
    },
    /// A campaign draining one queue per session point.
    Campaign {
        /// The run under `job-N/campaign/`.
        run: CampaignRun,
    },
}

/// What a worker got when asking a job for work.
#[derive(Debug)]
pub enum WorkClaim {
    /// A shard was leased: execute `plan` and submit to `queue`.
    Claimed {
        /// The queue the shard belongs to (a session job's only queue, or
        /// one campaign point's queue).
        queue: ShardQueue,
        /// The leased sub-plan.
        plan: Box<ShardPlan>,
    },
    /// Nothing claimable right now, but live leases are outstanding.
    Wait,
    /// Every shard of every queue is done.
    Drained,
}

/// A finished job's merged output.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// A session job's final merged summary.
    Session(TrialSummary),
    /// A campaign job's folded report.
    Campaign(CampaignReport),
}

impl JobWork {
    /// Claims the next available shard across the job's queues: session
    /// jobs have one, campaigns try each point in sweep order (so several
    /// workers naturally spread over several points).
    ///
    /// # Errors
    ///
    /// Queue/campaign errors from the claim path.
    pub fn claim(&self, worker: &str, lease_ms: u64) -> Result<WorkClaim, SpoolError> {
        match self {
            JobWork::Session { queue } => match queue.claim(worker, lease_ms)? {
                ClaimOutcome::Claimed(plan) => Ok(WorkClaim::Claimed {
                    queue: queue.clone(),
                    plan,
                }),
                ClaimOutcome::Wait { .. } => Ok(WorkClaim::Wait),
                ClaimOutcome::Drained => Ok(WorkClaim::Drained),
            },
            JobWork::Campaign { run } => {
                let mut waiting = false;
                for point in run.points() {
                    let queue = run.point_queue(point.index)?;
                    match queue.claim(worker, lease_ms)? {
                        ClaimOutcome::Claimed(plan) => {
                            return Ok(WorkClaim::Claimed { queue, plan });
                        }
                        ClaimOutcome::Wait { .. } => waiting = true,
                        ClaimOutcome::Drained => {}
                    }
                }
                Ok(if waiting {
                    WorkClaim::Wait
                } else {
                    WorkClaim::Drained
                })
            }
        }
    }

    /// `(trials_done, trials_total)` across the job's queues.
    ///
    /// # Errors
    ///
    /// Checkpoint load failures.
    pub fn progress(&self) -> Result<(u64, u64), SpoolError> {
        match self {
            JobWork::Session { queue } => {
                let status = queue.status()?;
                Ok((status.trials_done, status.trials_total as u64))
            }
            JobWork::Campaign { run } => {
                let status = run.status()?;
                Ok((status.trials_done, status.trials_total))
            }
        }
    }

    /// True once every shard of every queue is done.
    ///
    /// # Errors
    ///
    /// Checkpoint load failures.
    pub fn complete(&self) -> Result<bool, SpoolError> {
        match self {
            JobWork::Session { queue } => Ok(queue.status()?.complete()),
            JobWork::Campaign { run } => {
                let status = run.status()?;
                Ok(status.points_done == status.points_total)
            }
        }
    }

    /// Recovers every queue of the job: verifies completed result files and
    /// returns expired leases to pending (the restart path).
    ///
    /// # Errors
    ///
    /// Verification failures naming the damaged file, or checkpoint errors.
    pub fn recover(&self) -> Result<(), SpoolError> {
        match self {
            JobWork::Session { queue } => {
                queue.recover()?;
            }
            JobWork::Campaign { run } => {
                for point in run.points() {
                    run.point_queue(point.index)?.recover()?;
                }
            }
        }
        Ok(())
    }
}

/// The spool directory handle. All state lives on disk; the handle is
/// freely cloneable.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) a spool directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Spool, SpoolError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| SpoolError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        Ok(Spool { dir })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The directory of job `id`.
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:010}"))
    }

    /// Path of job `id`'s final result file.
    pub fn result_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join(RESULT_FILE)
    }

    /// The smallest job id strictly greater than every id ever spooled here
    /// (done, cancelled and in-flight jobs all count — ids are never
    /// reused, so restarts keep the submission order deterministic).
    ///
    /// # Errors
    ///
    /// I/O errors listing the spool.
    pub fn next_job_id(&self) -> Result<u64, SpoolError> {
        let mut next = 1u64;
        for id in self.job_ids()? {
            next = next.max(id + 1);
        }
        Ok(next)
    }

    /// Every job id present in the spool, in ascending order.
    fn job_ids(&self) -> Result<Vec<u64>, SpoolError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| SpoolError::Io {
            path: self.dir.clone(),
            message: e.to_string(),
        })?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SpoolError::Io {
                path: self.dir.clone(),
                message: e.to_string(),
            })?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            ids.push(id);
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Lowers an accepted job onto disk: initializes its queues, then
    /// writes the manifest last (so a crash mid-lowering leaves a dir with
    /// no `job.json`, which [`scan`](Self::scan) ignores). Returns the
    /// executable handle.
    ///
    /// # Errors
    ///
    /// [`SpoolError::Unsupported`] for sampled-workload campaigns, plus
    /// queue/campaign/I/O errors.
    pub fn lower(&self, manifest: &JobManifest) -> Result<JobWork, SpoolError> {
        let job_dir = self.job_dir(manifest.job);
        fs::create_dir_all(&job_dir).map_err(|e| SpoolError::Io {
            path: job_dir.clone(),
            message: e.to_string(),
        })?;
        let shard_trials = manifest.shard_trials.max(1);
        let work = match &manifest.spec {
            JobSpec::Session {
                scenario,
                trials,
                seed,
            } => {
                let engine = SessionEngine::new(*seed);
                let plan = engine.plan(scenario, *trials);
                let queue = ShardQueue::init(
                    job_dir.join(QUEUE_DIR),
                    &plan,
                    shard_trials,
                    ShardOutput::Summary,
                )?;
                JobWork::Session { queue }
            }
            JobSpec::Campaign { campaign } => {
                reject_unservable(campaign)?;
                let run = CampaignRun::init(job_dir.join(CAMPAIGN_DIR), campaign, shard_trials)?;
                JobWork::Campaign { run }
            }
        };
        let manifest_path = job_dir.join(MANIFEST_FILE);
        write_atomically(&manifest_path, serde::json::to_string(manifest).as_bytes())?;
        Ok(work)
    }

    /// Rescans the spool after a restart: every fully-lowered job that is
    /// neither finished nor cancelled is reopened, its queues recovered
    /// (expired leases back to pending, completed results verified), and
    /// returned for re-scheduling — in job-id order, so the restart
    /// schedule is deterministic.
    ///
    /// # Errors
    ///
    /// Manifest/queue/verification failures naming the offending file: a
    /// damaged spool fails loudly instead of silently skipping jobs.
    pub fn scan(&self) -> Result<Vec<(JobManifest, JobWork)>, SpoolError> {
        let mut jobs = Vec::new();
        for id in self.job_ids()? {
            let job_dir = self.job_dir(id);
            let manifest_path = job_dir.join(MANIFEST_FILE);
            if !manifest_path.exists() {
                // A crash mid-lowering: the job was never acknowledged.
                continue;
            }
            if job_dir.join(RESULT_FILE).exists() || job_dir.join(CANCELLED_FILE).exists() {
                continue;
            }
            let manifest = self.read_manifest(&manifest_path)?;
            let work = self.reopen(&manifest)?;
            work.recover()?;
            jobs.push((manifest, work));
        }
        Ok(jobs)
    }

    /// Reopens a lowered job's queues without recovering them.
    ///
    /// # Errors
    ///
    /// Queue/campaign open errors.
    pub fn reopen(&self, manifest: &JobManifest) -> Result<JobWork, SpoolError> {
        let job_dir = self.job_dir(manifest.job);
        Ok(match &manifest.spec {
            JobSpec::Session { .. } => JobWork::Session {
                queue: ShardQueue::open(job_dir.join(QUEUE_DIR))?,
            },
            JobSpec::Campaign { .. } => JobWork::Campaign {
                run: CampaignRun::open(job_dir.join(CAMPAIGN_DIR))?,
            },
        })
    }

    /// Reads and validates one job manifest.
    fn read_manifest(&self, path: &Path) -> Result<JobManifest, SpoolError> {
        let text = fs::read_to_string(path).map_err(|e| SpoolError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let manifest: JobManifest =
            serde::json::from_str(&text).map_err(|e| SpoolError::Manifest {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?;
        if manifest.version != protocol::wire::MANIFEST_VERSION {
            return Err(SpoolError::Manifest {
                path: path.to_path_buf(),
                message: format!(
                    "manifest version {} unsupported (this build speaks {})",
                    manifest.version,
                    protocol::wire::MANIFEST_VERSION
                ),
            });
        }
        Ok(manifest)
    }

    /// Marks job `id` cancelled: a marker file the scheduler and every
    /// future [`scan`](Self::scan) honor.
    ///
    /// # Errors
    ///
    /// I/O errors writing the marker.
    pub fn mark_cancelled(&self, id: u64) -> Result<(), SpoolError> {
        write_atomically(
            &self.job_dir(id).join(CANCELLED_FILE),
            b"{\"cancelled\":true}",
        )
    }

    /// Merges a complete job and writes its final `result.json`
    /// atomically. The bytes are exactly the serialized summary/report, so
    /// two drains of the same job — interrupted or not — produce identical
    /// files.
    ///
    /// # Errors
    ///
    /// Merge/report errors (including incompleteness), or I/O errors
    /// writing the result.
    pub fn finalize(&self, id: u64, work: &JobWork) -> Result<JobOutcome, SpoolError> {
        let outcome = match work {
            JobWork::Session { queue } => {
                let merged = queue.merge()?;
                let summary =
                    merged
                        .into_summary()
                        .ok_or(SpoolError::Queue(QueueError::Merge {
                            path: None,
                            error: protocol::engine::MergeError::MixedPayloads,
                        }))?;
                JobOutcome::Session(summary)
            }
            JobWork::Campaign { run } => JobOutcome::Campaign(run.report()?),
        };
        let bytes = match &outcome {
            JobOutcome::Session(summary) => serde::json::to_string(summary),
            JobOutcome::Campaign(report) => serde::json::to_string(report),
        };
        write_atomically(&self.result_path(id), bytes.as_bytes())?;
        Ok(outcome)
    }

    /// Looks up a job that is no longer (or never was) in the in-memory
    /// registry, from disk alone.
    ///
    /// # Errors
    ///
    /// Manifest read failures.
    pub fn lookup(&self, id: u64) -> Result<SpoolLookup, SpoolError> {
        let job_dir = self.job_dir(id);
        let manifest_path = job_dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Ok(SpoolLookup::Absent);
        }
        let manifest = self.read_manifest(&manifest_path)?;
        if job_dir.join(CANCELLED_FILE).exists() {
            return Ok(SpoolLookup::Cancelled { manifest });
        }
        if job_dir.join(RESULT_FILE).exists() {
            return Ok(SpoolLookup::Done { manifest });
        }
        Ok(SpoolLookup::InFlight { manifest })
    }

    /// Folds the contiguous done-prefix of a session job's queue into a
    /// streaming snapshot: `(prefix_trials, summary)`. The summary is the
    /// order-respecting merge of the prefix shards' partials — byte-
    /// identical to a local run of the same prefix. Returns `None` while no
    /// prefix shard is done.
    ///
    /// # Errors
    ///
    /// Checkpoint/result-file read failures.
    pub fn snapshot(&self, queue: &ShardQueue) -> Result<Option<(u64, TrialSummary)>, SpoolError> {
        let checkpoint = queue.checkpoint()?;
        let mut builder: Option<TrialSummaryBuilder> = None;
        let mut trials = 0u64;
        for slot in &checkpoint.shards {
            if !matches!(slot.state, SlotState::Done { .. }) {
                break;
            }
            let path = queue.result_path(slot);
            let text = fs::read_to_string(&path).map_err(|e| SpoolError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let result: protocol::engine::ShardResult =
                serde::json::from_str(&text).map_err(|e| SpoolError::Manifest {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
            let ShardPayload::Summary(partial) = result.payload else {
                return Err(SpoolError::Unsupported {
                    reason: "snapshots need summary payloads".to_string(),
                });
            };
            trials += slot.trial_count as u64;
            builder = Some(match builder {
                None => partial,
                Some(mut merged) => {
                    merged.merge(partial);
                    merged
                }
            });
        }
        Ok(builder.map(|b| (trials, b.finish())))
    }
}

/// What [`Spool::lookup`] found on disk for a job id.
#[derive(Debug, Clone, PartialEq)]
pub enum SpoolLookup {
    /// No such job was ever spooled here.
    Absent,
    /// The job is lowered but has no final result yet.
    InFlight {
        /// The job's manifest.
        manifest: JobManifest,
    },
    /// The job finished; `result.json` is on disk.
    Done {
        /// The job's manifest.
        manifest: JobManifest,
    },
    /// The job was cancelled.
    Cancelled {
        /// The job's manifest.
        manifest: JobManifest,
    },
}

/// Refuses job specs the server cannot drain.
fn reject_unservable(campaign: &Campaign) -> Result<(), SpoolError> {
    match campaign.workload {
        CampaignWorkload::Session { .. } => Ok(()),
        CampaignWorkload::Sampled { .. } => Err(SpoolError::Unsupported {
            reason: "sampled-workload campaigns need a process-local sampler; \
                     run them with `shardctl campaign run` instead"
                .to_string(),
        }),
    }
}

/// Writes `bytes` to `path` atomically (write temp + rename), matching the
/// queue's own crash model.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), SpoolError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| SpoolError::Io {
        path: tmp.clone(),
        message: e.to_string(),
    })?;
    fs::rename(&tmp, path).map_err(|e| SpoolError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}
