//! A minimal blocking client for `qsdc-serve`, used by the chaos tests,
//! the `serve_load` load generator, and ad-hoc tooling.
//!
//! The protocol is symmetric newline-delimited JSON, so the client is a
//! thin wrapper: [`Client::send`] writes one request line,
//! [`Client::recv`] reads the next response line (which may be an
//! asynchronous [`Snapshot`](Response::Snapshot) or
//! [`Done`](Response::Done) for an earlier job — the server interleaves
//! them with request replies). [`Client::wait_done`] drives a submitted
//! job to completion, collecting its snapshots.

use protocol::wire::{JobSpec, Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A blocking connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The server's advertised per-client job quota (from `Hello`).
    quota: usize,
    /// The server's advertised snapshot cadence (from `Hello`).
    snapshot_trials: usize,
}

impl Client {
    /// Connects and consumes the server's `Hello` banner.
    ///
    /// # Errors
    ///
    /// Connection failures, or a peer that does not speak the protocol
    /// (no parseable `Hello` line).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client {
            reader,
            writer,
            quota: 0,
            snapshot_trials: 0,
        };
        match client.recv()? {
            Response::Hello {
                quota,
                snapshot_trials,
                ..
            } => {
                client.quota = quota;
                client.snapshot_trials = snapshot_trials;
                Ok(client)
            }
            other => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
        }
    }

    /// The server's per-client job quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// The server's snapshot cadence in trials.
    pub fn snapshot_trials(&self) -> usize {
        self.snapshot_trials
    }

    /// Writes one request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = serde::json::to_string(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Writes one raw line (for tests exercising the server's malformed-
    /// and oversized-input handling).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next response line, whichever job it belongs to.
    ///
    /// # Errors
    ///
    /// Socket read failures, EOF, or an unparseable line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde::json::from_str(&line)
            .map_err(|error| io::Error::other(format!("unparseable response: {error}")))
    }

    /// Submits a job and returns the server's direct answer
    /// (`Accepted`, `Busy`, or `Error`). Asynchronous responses for other
    /// jobs (snapshots, completions, cancellations) arriving first are
    /// skipped — callers tracking those should use [`recv`](Self::recv)
    /// directly.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn submit(&mut self, job: JobSpec) -> io::Result<Response> {
        self.send(&Request::Submit { job })?;
        loop {
            match self.recv()? {
                Response::Snapshot { .. }
                | Response::Done { .. }
                | Response::Cancelled { .. }
                | Response::Status { .. } => continue,
                direct => return Ok(direct),
            }
        }
    }

    /// Reads until job `job` finishes, collecting its streamed snapshots.
    /// Returns the terminal response (`Done`, `Cancelled`, or an `Error`)
    /// plus the snapshots seen on the way.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn wait_done(&mut self, job: u64) -> io::Result<(Response, Vec<Response>)> {
        let mut snapshots = Vec::new();
        loop {
            let response = self.recv()?;
            match &response {
                Response::Snapshot { job: j, .. } if *j == job => snapshots.push(response),
                Response::Done { job: j, .. } | Response::Cancelled { job: j } if *j == job => {
                    return Ok((response, snapshots));
                }
                Response::Error { .. } => return Ok((response, snapshots)),
                _ => {}
            }
        }
    }
}
