//! Tolerant floating-point comparison helpers.
//!
//! Quantum simulation is numerically noisy (repeated unitary application, Kraus channel
//! renormalisation), so exact equality is almost never the right check. These helpers give the
//! rest of the workspace one consistent definition of "close enough".

use crate::complex::Complex64;

/// Returns `true` when `|a - b| <= tol`.
///
/// ```rust
/// # use mathkit::approx::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
/// assert!(!approx_eq(1.0, 1.1, 1e-10));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when `|z| <= tol`.
///
/// ```rust
/// # use mathkit::approx::approx_zero;
/// assert!(approx_zero(1e-14, 1e-10));
/// ```
#[inline]
pub fn approx_zero(z: f64, tol: f64) -> bool {
    z.abs() <= tol
}

/// Returns `true` when two complex numbers agree to within `tol` in both components.
///
/// ```rust
/// # use mathkit::approx::approx_eq_c;
/// # use mathkit::complex::Complex64;
/// assert!(approx_eq_c(Complex64::new(1.0, 0.0), Complex64::new(1.0, 1e-13), 1e-10));
/// ```
#[inline]
pub fn approx_eq_c(a: Complex64, b: Complex64, tol: f64) -> bool {
    approx_eq(a.re, b.re, tol) && approx_eq(a.im, b.im, tol)
}

/// Returns `true` when two slices of complex numbers agree element-wise to within `tol`.
///
/// Slices of different lengths are never approximately equal.
///
/// ```rust
/// # use mathkit::approx::approx_eq_slice;
/// # use mathkit::complex::Complex64;
/// let a = [Complex64::ONE, Complex64::ZERO];
/// let b = [Complex64::new(1.0, 1e-13), Complex64::ZERO];
/// assert!(approx_eq_slice(&a, &b, 1e-10));
/// ```
pub fn approx_eq_slice(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| approx_eq_c(*x, *y, tol))
}

/// Returns `true` when two probability distributions (given as slices) agree to within `tol`
/// in total-variation distance.
///
/// ```rust
/// # use mathkit::approx::approx_eq_distribution;
/// assert!(approx_eq_distribution(&[0.5, 0.5], &[0.5 + 1e-12, 0.5 - 1e-12], 1e-10));
/// ```
pub fn approx_eq_distribution(p: &[f64], q: &[f64], tol: f64) -> bool {
    if p.len() != q.len() {
        return false;
    }
    let tv: f64 = p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    tv <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_comparisons() {
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq(0.1, 0.2, 1e-3));
        assert!(approx_zero(-1e-15, 1e-12));
        assert!(!approx_zero(1e-3, 1e-12));
    }

    #[test]
    fn complex_comparisons() {
        let a = Complex64::new(1.0, -1.0);
        let b = Complex64::new(1.0 + 5e-11, -1.0 - 5e-11);
        assert!(approx_eq_c(a, b, 1e-10));
        assert!(!approx_eq_c(a, b, 1e-12));
    }

    #[test]
    fn slice_comparisons_require_equal_length() {
        let a = [Complex64::ONE];
        let b = [Complex64::ONE, Complex64::ZERO];
        assert!(!approx_eq_slice(&a, &b, 1e-10));
        assert!(approx_eq_slice(&a, &a, 0.0));
    }

    #[test]
    fn distribution_comparison_uses_total_variation() {
        let p = [0.25, 0.25, 0.25, 0.25];
        let q = [0.26, 0.24, 0.25, 0.25];
        assert!(approx_eq_distribution(&p, &q, 0.011));
        assert!(!approx_eq_distribution(&p, &q, 0.005));
        assert!(!approx_eq_distribution(&p, &q[..3], 1.0));
    }
}
