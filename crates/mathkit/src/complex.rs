//! Double-precision complex numbers.
//!
//! A minimal, dependency-free complex type tailored to the needs of the quantum simulator:
//! arithmetic operators, conjugation, modulus, polar form and the exponential map used to
//! build phase gates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```rust
/// use mathkit::complex::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a + b, Complex64::new(4.0, 1.0));
/// assert_eq!(a * b, Complex64::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// let z = Complex64::new(0.5, -0.25);
    /// assert_eq!(z.re, 0.5);
    /// assert_eq!(z.im, -0.25);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// assert_eq!(Complex64::real(2.0), Complex64::new(2.0, 0.0));
    /// ```
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// assert_eq!(Complex64::imag(2.0), Complex64::new(0.0, 2.0));
    /// ```
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// let z = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{iθ}`, the unit phase used by phase gates and measurement bases.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// let z = Complex64::cis(0.0);
    /// assert_eq!(z, Complex64::ONE);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` (a Born-rule probability when `z` is an amplitude).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics if `z` is exactly zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        assert!(d != 0.0, "attempted to invert the zero complex number");
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    ///
    /// ```rust
    /// # use mathkit::complex::Complex64;
    /// let z = Complex64::new(0.0, std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Raises `self` to a real power, via polar form.
    #[inline]
    pub fn powf(self, exponent: f64) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        Self::from_polar(self.norm().powf(exponent), self.arg() * exponent)
    }

    /// Returns `true` when both real and imaginary parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Multiplies by the imaginary unit (a cheap 90° rotation).
    #[inline]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Linear interpolation between two complex numbers (used by noise interpolation tests).
    #[inline]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        self * (1.0 - t) + other * t
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Division by a complex number *is* multiplication by its reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ONE, |acc, z| acc * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_c;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I, Complex64::new(0.0, 1.0));
        assert_eq!(Complex64::real(3.5), Complex64::new(3.5, 0.0));
        assert_eq!(Complex64::imag(-1.25), Complex64::new(0.0, -1.25));
        assert_eq!(Complex64::from((1.0, 2.0)), Complex64::new(1.0, 2.0));
        assert_eq!(Complex64::from(4.0), Complex64::real(4.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 4.0);
        assert_eq!(a + b, Complex64::new(0.5, 6.0));
        assert_eq!(a - b, Complex64::new(1.5, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_follows_i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(4.0, -1.0);
        assert_eq!(a * b, Complex64::new(11.0, 10.0));
        assert_eq!(a * 2.0, Complex64::new(4.0, 6.0));
        assert_eq!(2.0 * a, Complex64::new(4.0, 6.0));
    }

    #[test]
    fn division_and_reciprocal() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(4.0, -1.0);
        let q = (a * b) / b;
        assert!(approx_eq_c(q, a, 1e-12));
        assert!(approx_eq_c(a * a.recip(), Complex64::ONE, 1e-12));
    }

    #[test]
    #[should_panic(expected = "zero complex")]
    fn reciprocal_of_zero_panics() {
        let _ = Complex64::ZERO.recip();
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        // |z|^2 == z * conj(z)
        assert!(approx_eq_c(
            z * z.conj(),
            Complex64::real(z.norm_sqr()),
            1e-12
        ));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, FRAC_PI_4);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn cis_covers_the_protocol_measurement_phases() {
        // The DI check uses phases 0, ±π/4, π/2; all must be unit modulus.
        for theta in [0.0, FRAC_PI_4, -FRAC_PI_4, FRAC_PI_2] {
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_satisfies_eulers_identity() {
        let z = Complex64::imag(PI).exp();
        assert!(approx_eq_c(z, -Complex64::ONE, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(approx_eq_c(r * r, z, 1e-12));
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = Complex64::new(1.2, -0.7);
        assert!(approx_eq_c(z.powf(3.0), z * z * z, 1e-10));
        assert_eq!(Complex64::ZERO.powf(2.0), Complex64::ZERO);
    }

    #[test]
    fn mul_i_rotates_by_ninety_degrees() {
        let z = Complex64::new(1.0, 0.0);
        assert_eq!(z.mul_i(), Complex64::I);
        assert_eq!(z.mul_i().mul_i(), -Complex64::ONE);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-3.0, 0.5),
        ];
        let s: Complex64 = xs.iter().sum();
        assert_eq!(s, Complex64::new(0.0, 0.5));
        let p: Complex64 = xs.iter().copied().product();
        // (1+i)(2-i) = 3+i ; (3+i)(-3+0.5i) = -9.5 - 1.5i
        assert!(approx_eq_c(p, Complex64::new(-9.5, -1.5), 1e-12));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn lerp_endpoints() {
        let a = Complex64::new(1.0, 1.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
