//! Dense complex matrices.
//!
//! [`CMatrix`] is the workhorse behind gates, density matrices and Kraus operators. It is a
//! simple row-major dense matrix; the dimensions in this project stay small (at most a few
//! dozen qubits' worth of 2×2 / 4×4 blocks tensored together for density-matrix simulation of
//! EPR pairs), so no sparse or blocked representations are needed.

use crate::approx::{approx_eq, approx_eq_c};
use crate::complex::Complex64;
use crate::vector::CVector;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major complex matrix.
///
/// # Examples
///
/// ```rust
/// use mathkit::complex::Complex64;
/// use mathkit::matrix::CMatrix;
///
/// let x = CMatrix::from_rows(&[
///     vec![Complex64::ZERO, Complex64::ONE],
///     vec![Complex64::ONE, Complex64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!(x.is_hermitian(1e-12));
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Clone for CMatrix {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    /// Copies `source` into `self`, reusing `self`'s existing buffer when it
    /// is large enough — the allocation-free path the per-trial hot loops
    /// rely on (see `clone_from` on `DensityMatrix` / `EprPair`).
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl CMatrix {
    /// Creates a matrix from explicit dimensions and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged (different lengths) or empty.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```rust
    /// # use mathkit::matrix::CMatrix;
    /// let id = CMatrix::identity(4);
    /// assert!(id.is_unitary(1e-12));
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds the outer product `|a⟩⟨b|` of two vectors.
    pub fn outer(a: &CVector, b: &CVector) -> Self {
        let mut m = Self::zeros(a.len(), b.len());
        for i in 0..a.len() {
            for j in 0..b.len() {
                m[(i, j)] = a[i] * b[j].conj();
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the row-major data.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the row-major data (for in-place kernels that update a
    /// matrix without reallocating it).
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(j, i)] = self[(i, j)];
            }
        }
        m
    }

    /// Conjugate transpose (Hermitian adjoint) `A†`.
    pub fn adjoint(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(j, i)] = self[(i, j)].conj();
            }
        }
        m
    }

    /// Element-wise complex conjugate (no transpose).
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, factor: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * factor).collect(),
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} times {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector: `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn apply(&self, v: &CVector) -> CVector {
        assert_eq!(
            self.cols,
            v.len(),
            "matrix-vector dimension mismatch: {}x{} times {}",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out.push(acc);
        }
        CVector::new(out)
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// ```rust
    /// # use mathkit::matrix::CMatrix;
    /// let id2 = CMatrix::identity(2);
    /// let id4 = id2.kron(&id2);
    /// assert_eq!(id4.rows(), 4);
    /// assert!(id4.is_unitary(1e-12));
    /// ```
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Returns `true` when `A† A = I` to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let product = self.adjoint().matmul(self);
        product.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` when `A = A†` to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Returns `true` when every entry of `self - other` is within `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| approx_eq_c(*a, *b, tol))
    }

    /// Returns `true` when the matrix is a valid density matrix: Hermitian, unit trace, and
    /// positive semi-definite (checked via all 1×1 and 2×2 principal minors plus diagonal
    /// non-negativity — sufficient for the small matrices used in this project combined with
    /// the trace/Hermiticity requirements; a full eigenvalue check is available via
    /// [`CMatrix::eigenvalues_hermitian_2x2`] for 2×2 blocks).
    pub fn is_density_matrix(&self, tol: f64) -> bool {
        if !self.is_hermitian(tol) {
            return false;
        }
        if !approx_eq(self.trace().re, 1.0, tol) || !approx_eq(self.trace().im, 0.0, tol) {
            return false;
        }
        // Diagonal entries of a PSD matrix are non-negative.
        for i in 0..self.rows {
            if self[(i, i)].re < -tol {
                return false;
            }
        }
        // All 2x2 principal minors must be non-negative for PSD.
        for i in 0..self.rows {
            for j in (i + 1)..self.rows {
                let minor = self[(i, i)] * self[(j, j)] - self[(i, j)] * self[(j, i)];
                if minor.re < -tol.max(1e-9) {
                    return false;
                }
            }
        }
        true
    }

    /// Eigenvalues of a Hermitian 2×2 matrix (returned in ascending order).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 2×2.
    pub fn eigenvalues_hermitian_2x2(&self) -> [f64; 2] {
        assert!(
            self.rows == 2 && self.cols == 2,
            "eigenvalues_hermitian_2x2 requires a 2x2 matrix"
        );
        let a = self[(0, 0)].re;
        let d = self[(1, 1)].re;
        let b = self[(0, 1)];
        let mean = (a + d) / 2.0;
        let disc = ((a - d) / 2.0).powi(2) + b.norm_sqr();
        let root = disc.max(0.0).sqrt();
        [mean - root, mean + root]
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Matrix power by repeated squaring (non-negative integer exponents only).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn powi(&self, mut exponent: u32) -> CMatrix {
        assert!(self.is_square(), "powi of a non-square matrix");
        let mut result = CMatrix::identity(self.rows);
        let mut base = self.clone();
        while exponent > 0 {
            if exponent & 1 == 1 {
                result = result.matmul(&base);
            }
            base = base.matmul(&base);
            exponent >>= 1;
        }
        result
    }

    /// Extracts row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> CVector {
        assert!(i < self.rows, "row index out of range");
        CVector::new(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Extracts column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols, "column index out of range");
        CVector::new((0..self.rows).map(|i| self[(i, j)]).collect())
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "adding matrices of different shapes");
        assert_eq!(self.cols, rhs.cols, "adding matrices of different shapes");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.rows, rhs.rows,
            "subtracting matrices of different shapes"
        );
        assert_eq!(
            self.cols, rhs.cols,
            "subtracting matrices of different shapes"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale(-Complex64::ONE)
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Mul<&CVector> for &CMatrix {
    type Output = CVector;
    fn mul(self, rhs: &CVector) -> CVector {
        self.apply(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex64::ZERO, Complex64::ONE],
            vec![Complex64::ONE, Complex64::ZERO],
        ])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex64::ZERO, -Complex64::I],
            vec![Complex64::I, Complex64::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::diagonal(&[Complex64::ONE, -Complex64::ONE])
    }

    fn hadamard() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex64::ONE, Complex64::ONE],
            vec![Complex64::ONE, -Complex64::ONE],
        ])
        .scale(Complex64::real(FRAC_1_SQRT_2))
    }

    #[test]
    fn construction_and_shape() {
        let m = CMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
        let id = CMatrix::identity(3);
        assert!(id.is_square());
        assert_eq!(id.trace(), Complex64::real(3.0));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_data_length_panics() {
        let _ = CMatrix::new(2, 2, vec![Complex64::ZERO; 3]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = CMatrix::from_rows(&[vec![Complex64::ZERO], vec![Complex64::ZERO, Complex64::ONE]]);
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let y = pauli_y();
        let z = pauli_z();
        let id = CMatrix::identity(2);
        // X² = Y² = Z² = I
        assert!(x.matmul(&x).approx_eq(&id, 1e-12));
        assert!(y.matmul(&y).approx_eq(&id, 1e-12));
        assert!(z.matmul(&z).approx_eq(&id, 1e-12));
        // XY = iZ
        assert!(x.matmul(&y).approx_eq(&z.scale(Complex64::I), 1e-12));
        // anti-commutation: XZ = -ZX
        assert!(x
            .matmul(&z)
            .approx_eq(&z.matmul(&x).scale(-Complex64::ONE), 1e-12));
    }

    #[test]
    fn pauli_and_hadamard_are_unitary_and_hermitian() {
        for m in [pauli_x(), pauli_y(), pauli_z(), hadamard()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
        }
    }

    #[test]
    fn adjoint_and_transpose() {
        let m = CMatrix::from_rows(&[
            vec![Complex64::new(1.0, 2.0), Complex64::new(3.0, -1.0)],
            vec![Complex64::new(0.0, 1.0), Complex64::new(-2.0, 0.5)],
        ]);
        let t = m.transpose();
        assert_eq!(t[(0, 1)], Complex64::new(0.0, 1.0));
        let a = m.adjoint();
        assert_eq!(a[(0, 1)], Complex64::new(0.0, -1.0));
        assert_eq!(a[(1, 0)], Complex64::new(3.0, 1.0));
        // (AB)† = B†A†
        let x = pauli_x();
        let lhs = m.matmul(&x).adjoint();
        let rhs = x.adjoint().matmul(&m.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn matrix_vector_application() {
        let h = hadamard();
        let zero = CVector::basis(2, 0);
        let plus = h.apply(&zero);
        assert!((plus.probability(0) - 0.5).abs() < 1e-12);
        assert!((plus.probability(1) - 0.5).abs() < 1e-12);
        // H² = I so applying twice returns |0⟩
        let back = h.apply(&plus);
        assert!((back.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kron_builds_bell_projector_dimensions() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        assert!(xi.is_unitary(1e-12));
        // (X⊗I)(X⊗I) = I⊗I
        assert!(xi.matmul(&xi).approx_eq(&CMatrix::identity(4), 1e-12));
    }

    #[test]
    fn kron_of_vectors_matches_matrix_outer_structure() {
        let a = CVector::basis(2, 1);
        let b = CVector::basis(2, 0);
        let ab = a.kron(&b); // |10⟩ = index 2
        let proj = CMatrix::outer(&ab, &ab);
        assert_eq!(proj.trace(), Complex64::ONE);
        assert!(proj.is_hermitian(1e-12));
        assert!(proj.is_density_matrix(1e-9));
    }

    #[test]
    fn density_matrix_checks() {
        // Maximally mixed single-qubit state.
        let mixed = CMatrix::identity(2).scale(Complex64::real(0.5));
        assert!(mixed.is_density_matrix(1e-12));
        // A Pauli is Hermitian but has trace 0 → not a density matrix.
        assert!(!pauli_x().is_density_matrix(1e-12));
        // A non-Hermitian matrix is rejected.
        let bad = CMatrix::from_rows(&[
            vec![Complex64::real(0.5), Complex64::ONE],
            vec![Complex64::ZERO, Complex64::real(0.5)],
        ]);
        assert!(!bad.is_density_matrix(1e-12));
    }

    #[test]
    fn eigenvalues_of_hermitian_2x2() {
        let z = pauli_z();
        let [lo, hi] = z.eigenvalues_hermitian_2x2();
        assert!((lo + 1.0).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
        let mixed = CMatrix::identity(2).scale(Complex64::real(0.5));
        let [a, b] = mixed.eigenvalues_hermitian_2x2();
        assert!((a - 0.5).abs() < 1e-12 && (b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let h = hadamard();
        assert!(h.powi(0).approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(h.powi(2).approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(h.powi(3).approx_eq(&h, 1e-12));
    }

    #[test]
    fn rows_and_cols_extraction() {
        let m = CMatrix::from_rows(&[
            vec![Complex64::real(1.0), Complex64::real(2.0)],
            vec![Complex64::real(3.0), Complex64::real(4.0)],
        ]);
        assert_eq!(
            m.row(1).as_slice(),
            &[Complex64::real(3.0), Complex64::real(4.0)]
        );
        assert_eq!(
            m.col(0).as_slice(),
            &[Complex64::real(1.0), Complex64::real(3.0)]
        );
    }

    #[test]
    fn frobenius_norm() {
        let m = CMatrix::identity(4);
        assert!((m.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn operator_overloads() {
        let x = pauli_x();
        let z = pauli_z();
        let sum = &x + &z;
        assert_eq!(sum[(0, 0)], Complex64::ONE);
        let diff = &x - &x;
        assert_eq!(diff.frobenius_norm(), 0.0);
        let prod = &x * &z;
        assert!(prod.is_unitary(1e-12));
        let neg = -&x;
        assert_eq!(neg[(0, 1)], -Complex64::ONE);
        let v = CVector::basis(2, 0);
        let applied = &x * &v;
        assert_eq!(applied.probability(1), 1.0);
    }

    #[test]
    fn outer_product_of_bell_state_is_projector() {
        // |Φ+⟩ = (|00⟩ + |11⟩)/√2
        let mut amps = vec![Complex64::ZERO; 4];
        amps[0] = Complex64::real(FRAC_1_SQRT_2);
        amps[3] = Complex64::real(FRAC_1_SQRT_2);
        let phi = CVector::new(amps);
        let rho = CMatrix::outer(&phi, &phi);
        assert!(rho.is_density_matrix(1e-9));
        // Projector: ρ² = ρ
        assert!(rho.matmul(&rho).approx_eq(&rho, 1e-12));
    }
}
