//! # mathkit — hand-rolled complex arithmetic and dense linear algebra
//!
//! The UA-DI-QSDC reproduction deliberately avoids external linear-algebra crates; everything
//! the quantum simulator needs lives here:
//!
//! - [`complex::Complex64`] — double-precision complex numbers.
//! - [`vector::CVector`] — dense complex vectors (quantum state amplitudes).
//! - [`matrix::CMatrix`] — dense complex matrices (gates, density matrices, Kraus operators).
//! - [`approx`] — tolerant floating-point comparison helpers used throughout the tests.
//!
//! ## Example
//!
//! ```rust
//! use mathkit::complex::Complex64;
//! use mathkit::matrix::CMatrix;
//!
//! // The Hadamard gate is unitary.
//! let h = CMatrix::from_rows(&[
//!     vec![Complex64::new(1.0, 0.0), Complex64::new(1.0, 0.0)],
//!     vec![Complex64::new(1.0, 0.0), Complex64::new(-1.0, 0.0)],
//! ]).scale(Complex64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
//! assert!(h.is_unitary(1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod complex;
pub mod matrix;
pub mod vector;

pub use approx::{approx_eq, approx_eq_c, approx_zero};
pub use complex::Complex64;
pub use matrix::CMatrix;
pub use vector::CVector;

/// Crate-wide default tolerance for floating-point comparisons.
///
/// All "is this unitary / normalised / Hermitian" style checks in the simulator default to
/// this tolerance unless the caller supplies a stricter one.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;
