//! Dense complex vectors.
//!
//! [`CVector`] is the amplitude container behind the statevector simulator: it supports the
//! inner product, norms, normalisation, scaling, tensor (Kronecker) products, and Born-rule
//! probability extraction.

use crate::approx::approx_eq;
use crate::complex::Complex64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, heap-allocated vector of [`Complex64`] entries.
///
/// # Examples
///
/// ```rust
/// use mathkit::complex::Complex64;
/// use mathkit::vector::CVector;
///
/// let plus = CVector::from_reals(&[std::f64::consts::FRAC_1_SQRT_2; 2]);
/// assert!(plus.is_normalized(1e-12));
/// assert!((plus.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// Creates a vector from a `Vec` of complex entries.
    pub fn new(data: Vec<Complex64>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of the given dimension.
    ///
    /// ```rust
    /// # use mathkit::vector::CVector;
    /// let v = CVector::zeros(4);
    /// assert_eq!(v.len(), 4);
    /// assert!(v.norm() == 0.0);
    /// ```
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![Complex64::ZERO; dim],
        }
    }

    /// Creates a computational-basis vector `|index⟩` of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    ///
    /// ```rust
    /// # use mathkit::vector::CVector;
    /// let e2 = CVector::basis(4, 2);
    /// assert_eq!(e2.probability(2), 1.0);
    /// ```
    pub fn basis(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dimension {dim}"
        );
        let mut v = Self::zeros(dim);
        v.data[index] = Complex64::ONE;
        v
    }

    /// Creates a vector from real entries (imaginary parts zero).
    pub fn from_reals(reals: &[f64]) -> Self {
        Self {
            data: reals.iter().map(|&r| Complex64::real(r)).collect(),
        }
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for the zero-dimensional vector.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying amplitudes.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying amplitudes.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<Complex64> {
        self.data
    }

    /// Iterator over the amplitudes.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }

    /// Hermitian inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    ///
    /// ```rust
    /// # use mathkit::vector::CVector;
    /// # use mathkit::complex::Complex64;
    /// let a = CVector::basis(2, 0);
    /// let b = CVector::basis(2, 1);
    /// assert_eq!(a.inner(&b), Complex64::ZERO);
    /// assert_eq!(a.inner(&a), Complex64::ONE);
    /// ```
    pub fn inner(&self, other: &CVector) -> Complex64 {
        assert_eq!(
            self.len(),
            other.len(),
            "inner product of vectors with different dimensions"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Euclidean (ℓ²) norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Squared norm (total probability when the vector is a quantum state).
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns `true` when the norm is within `tol` of 1.
    pub fn is_normalized(&self, tol: f64) -> bool {
        approx_eq(self.norm_sqr(), 1.0, tol)
    }

    /// Returns a normalised copy of the vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector has zero norm.
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        // `is_finite` guards NaN/infinite norms: `1/n` would silently poison
        // every entry instead of failing loudly here.
        assert!(n.is_finite() && n > 0.0, "cannot normalise the zero vector");
        self.scale(Complex64::real(1.0 / n))
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, factor: Complex64) -> CVector {
        CVector {
            data: self.data.iter().map(|z| *z * factor).collect(),
        }
    }

    /// Born-rule probability of the computational-basis outcome `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn probability(&self, index: usize) -> f64 {
        self.data[index].norm_sqr()
    }

    /// Full Born-rule probability distribution over basis outcomes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// ```rust
    /// # use mathkit::vector::CVector;
    /// let zero = CVector::basis(2, 0);
    /// let one = CVector::basis(2, 1);
    /// let zo = zero.kron(&one);
    /// assert_eq!(zo.probability(1), 1.0); // |01⟩ = index 1
    /// ```
    pub fn kron(&self, other: &CVector) -> CVector {
        let mut data = Vec::with_capacity(self.len() * other.len());
        for a in &self.data {
            for b in &other.data {
                data.push(*a * *b);
            }
        }
        CVector { data }
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> CVector {
        CVector {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Fidelity `|⟨self|other⟩|²` between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn fidelity(&self, other: &CVector) -> f64 {
        self.inner(other).norm_sqr()
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    fn index(&self, index: usize) -> &Complex64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for CVector {
    fn index_mut(&mut self, index: usize) -> &mut Complex64 {
        &mut self.data[index]
    }
}

impl From<Vec<Complex64>> for CVector {
    fn from(data: Vec<Complex64>) -> Self {
        Self { data }
    }
}

impl FromIterator<Complex64> for CVector {
    fn from_iter<I: IntoIterator<Item = Complex64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a Complex64;
    type IntoIter = std::slice::Iter<'a, Complex64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "adding vectors of different dimensions"
        );
        CVector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "subtracting vectors of different dimensions"
        );
        CVector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        self.scale(-Complex64::ONE)
    }
}

impl Mul<Complex64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: Complex64) -> CVector {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_eq, approx_eq_c};
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let ei = CVector::basis(4, i);
                let ej = CVector::basis(4, j);
                let expected = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert_eq!(ei.inner(&ej), expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_index_out_of_range_panics() {
        let _ = CVector::basis(2, 2);
    }

    #[test]
    fn norm_and_normalisation() {
        let v = CVector::from_reals(&[3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        let n = v.normalized();
        assert!(n.is_normalized(1e-12));
        assert!(approx_eq(n.probability(0), 0.36, 1e-12));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalising_zero_vector_panics() {
        let _ = CVector::zeros(3).normalized();
    }

    #[test]
    fn kron_dimensions_and_values() {
        let plus = CVector::from_reals(&[FRAC_1_SQRT_2, FRAC_1_SQRT_2]);
        let zero = CVector::basis(2, 0);
        let combined = plus.kron(&zero);
        assert_eq!(combined.len(), 4);
        // |+⟩⊗|0⟩ has amplitude 1/√2 on |00⟩ (index 0) and |10⟩ (index 2).
        assert!(approx_eq(combined.probability(0), 0.5, 1e-12));
        assert!(approx_eq(combined.probability(2), 0.5, 1e-12));
        assert!(approx_eq(combined.probability(1), 0.0, 1e-12));
    }

    #[test]
    fn inner_product_is_conjugate_linear_in_first_argument() {
        let a = CVector::new(vec![Complex64::I, Complex64::ZERO]);
        let b = CVector::basis(2, 0);
        // ⟨i·e0|e0⟩ = conj(i) = -i
        assert!(approx_eq_c(a.inner(&b), -Complex64::I, 1e-12));
    }

    #[test]
    fn fidelity_of_orthogonal_and_identical_states() {
        let a = CVector::basis(2, 0);
        let b = CVector::basis(2, 1);
        assert_eq!(a.fidelity(&b), 0.0);
        assert_eq!(a.fidelity(&a), 1.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[0.5, -1.0]);
        assert_eq!((&a + &b).as_slice()[1], Complex64::real(1.0));
        assert_eq!((&a - &b).as_slice()[0], Complex64::real(0.5));
        assert_eq!((-&a).as_slice()[0], Complex64::real(-1.0));
        assert_eq!(
            (&a * Complex64::real(2.0)).as_slice()[1],
            Complex64::real(4.0)
        );
    }

    #[test]
    fn probabilities_sum_to_norm_sqr() {
        let v = CVector::new(vec![
            Complex64::new(0.3, 0.4),
            Complex64::new(-0.1, 0.2),
            Complex64::new(0.0, 0.5),
        ]);
        let total: f64 = v.probabilities().iter().sum();
        assert!(approx_eq(total, v.norm_sqr(), 1e-12));
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = CVector::zeros(3);
        v[1] = Complex64::I;
        assert_eq!(v[1], Complex64::I);
        assert_eq!(v.iter().count(), 3);
        let collected: CVector = v.iter().copied().collect();
        assert_eq!(collected, v);
    }

    #[test]
    fn display_is_nonempty() {
        let v = CVector::basis(2, 0);
        assert!(!format!("{v}").is_empty());
    }
}
