//! Property-based tests for the hand-rolled linear algebra.

use mathkit::approx::{approx_eq, approx_eq_c};
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use mathkit::vector::CVector;
use proptest::prelude::*;

/// Strategy for a "reasonable" complex number (bounded so products stay finite).
fn complex() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im))
}

/// Strategy for a non-zero complex number.
fn nonzero_complex() -> impl Strategy<Value = Complex64> {
    complex().prop_filter("non-zero", |z| z.norm() > 1e-3)
}

/// Strategy for a complex vector of the given dimension.
fn cvector(dim: usize) -> impl Strategy<Value = CVector> {
    prop::collection::vec(complex(), dim).prop_map(CVector::new)
}

/// Strategy for a 2x2 complex matrix.
fn cmatrix2() -> impl Strategy<Value = CMatrix> {
    prop::collection::vec(complex(), 4).prop_map(|d| CMatrix::new(2, 2, d))
}

/// Strategy for a random single-qubit unitary built from Euler angles.
fn unitary2() -> impl Strategy<Value = CMatrix> {
    (
        0.0f64..std::f64::consts::TAU,
        0.0f64..std::f64::consts::TAU,
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(|(theta, phi, lambda)| {
            // Standard U(θ, φ, λ) parameterisation.
            let half = theta / 2.0;
            CMatrix::from_rows(&[
                vec![
                    Complex64::real(half.cos()),
                    -Complex64::cis(lambda) * half.sin(),
                ],
                vec![
                    Complex64::cis(phi) * half.sin(),
                    Complex64::cis(phi + lambda) * half.cos(),
                ],
            ])
        })
}

proptest! {
    #[test]
    fn complex_addition_commutes(a in complex(), b in complex()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn complex_multiplication_commutes(a in complex(), b in complex()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!(approx_eq_c(ab, ba, 1e-9));
    }

    #[test]
    fn complex_multiplication_distributes(a in complex(), b in complex(), c in complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!(approx_eq_c(lhs, rhs, 1e-8));
    }

    #[test]
    fn conjugation_is_involutive(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn norm_is_multiplicative(a in complex(), b in complex()) {
        prop_assert!(approx_eq((a * b).norm(), a.norm() * b.norm(), 1e-7));
    }

    #[test]
    fn reciprocal_is_inverse(a in nonzero_complex()) {
        prop_assert!(approx_eq_c(a * a.recip(), Complex64::ONE, 1e-9));
    }

    #[test]
    fn polar_round_trips(r in 0.001f64..10.0, theta in -3.0f64..3.0) {
        let z = Complex64::from_polar(r, theta);
        prop_assert!(approx_eq(z.norm(), r, 1e-9));
        prop_assert!(approx_eq(z.arg(), theta, 1e-9));
    }

    #[test]
    fn inner_product_conjugate_symmetry(a in cvector(4), b in cvector(4)) {
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        prop_assert!(approx_eq_c(ab, ba.conj(), 1e-8));
    }

    #[test]
    fn cauchy_schwarz(a in cvector(3), b in cvector(3)) {
        let inner = a.inner(&b).norm();
        prop_assert!(inner <= a.norm() * b.norm() + 1e-7);
    }

    #[test]
    fn kron_norm_is_product_of_norms(a in cvector(2), b in cvector(2)) {
        let k = a.kron(&b);
        prop_assert!(approx_eq(k.norm(), a.norm() * b.norm(), 1e-7));
    }

    #[test]
    fn matrix_product_is_associative(a in cmatrix2(), b in cmatrix2(), c in cmatrix2()) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-6));
    }

    #[test]
    fn adjoint_reverses_products(a in cmatrix2(), b in cmatrix2()) {
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn trace_is_cyclic(a in cmatrix2(), b in cmatrix2()) {
        let lhs = a.matmul(&b).trace();
        let rhs = b.matmul(&a).trace();
        prop_assert!(approx_eq_c(lhs, rhs, 1e-7));
    }

    #[test]
    fn random_euler_unitary_is_unitary(u in unitary2()) {
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn unitaries_preserve_norm(u in unitary2(), v in cvector(2)) {
        let before = v.norm();
        let after = u.apply(&v).norm();
        prop_assert!(approx_eq(before, after, 1e-8));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(u in unitary2(), w in unitary2()) {
        prop_assert!(u.kron(&w).is_unitary(1e-8));
    }

    #[test]
    fn outer_product_trace_is_inner_product(a in cvector(3), b in cvector(3)) {
        // tr(|a⟩⟨b|) = ⟨b|a⟩
        let m = CMatrix::outer(&a, &b);
        prop_assert!(approx_eq_c(m.trace(), b.inner(&a), 1e-7));
    }
}
