//! # UA-DI-QSDC — facade crate
//!
//! This crate re-exports the whole reproduction of *"User-Authenticated Device-Independent
//! Quantum Secure Direct Communication Protocol"* (Das, Basu, Paul, Rao; 2024) as a single
//! dependency. The underlying crates are:
//!
//! - [`mathkit`] — hand-rolled complex arithmetic and dense linear algebra.
//! - [`qsim`] — statevector / density-matrix simulator, gate library, circuits, measurement.
//! - [`noise`] — Kraus noise channels and NISQ device models (ibm_brisbane-like preset).
//! - [`qchannel`] — quantum channel (noisy identity-gate chain) and authenticated classical channel.
//! - [`protocol`] — the UA-DI-QSDC protocol itself plus baseline DI-QSDC protocols.
//! - [`attacks`] — eavesdropper strategies and the attack harness.
//! - [`analysis`] — statistics and table/figure data generation.
//!
//! ## Quickstart
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(8, &mut rng_from_seed(7));
//! let config = SessionConfig::builder()
//!     .message_bits(16)
//!     .check_bits(4)
//!     .di_check_pairs(220)
//!     .channel(ChannelSpec::noisy_identity_chain(10, DeviceModel::ibm_brisbane_like()))
//!     .build()?;
//! let outcome = run_session(&config, &identities, &mut rng_from_seed(42))?;
//! assert!(outcome.is_delivered());
//! # Ok(())
//! # }
//! ```

pub use analysis;
pub use attacks;
pub use mathkit;
pub use noise;
pub use protocol;
pub use qchannel;
pub use qsim;

/// Convenience re-exports covering the most common entry points of the reproduction.
pub mod prelude {
    pub use analysis::prelude::*;
    pub use attacks::prelude::*;
    pub use noise::prelude::*;
    pub use protocol::prelude::*;
    pub use qchannel::prelude::*;
    pub use qsim::prelude::*;

    pub use mathkit::complex::Complex64;

    /// Build a deterministic RNG from a seed; the reproduction uses this everywhere so that
    /// examples, tests and benches are repeatable.
    pub fn rng_from_seed(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
