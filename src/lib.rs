//! # UA-DI-QSDC — facade crate
//!
//! This crate re-exports the whole reproduction of *"User-Authenticated Device-Independent
//! Quantum Secure Direct Communication Protocol"* (Das, Basu, Paul, Rao; 2024) as a single
//! dependency. The underlying crates are:
//!
//! - [`mathkit`] — hand-rolled complex arithmetic and dense linear algebra.
//! - [`qsim`] — statevector / density-matrix simulator, gate library, circuits, measurement.
//! - [`noise`] — Kraus noise channels and NISQ device models (ibm_brisbane-like preset).
//! - [`qchannel`] — quantum channel (noisy identity-gate chain), authenticated classical
//!   channel, and the standard channel-tap attack library.
//! - [`protocol`] — the UA-DI-QSDC protocol, its baselines, and the session execution engine.
//! - [`attacks`] — protocol-level eavesdropper analyses and the information-leakage audit.
//! - [`analysis`] — statistics and table/figure data generation.
//!
//! ## Quickstart
//!
//! Execution is declarative: describe a [`prelude::Scenario`] (configuration, identities,
//! optional fixed message, adversary), then hand it to a [`prelude::SessionEngine`], which
//! derives a deterministic RNG stream per trial from its master seed — every run, trial
//! batch, and multi-scenario sweep replays bit for bit. Because each trial's stream is
//! independent of execution order, the engine can fan trials out across worker threads
//! ([`prelude::Parallelism`]) without changing a single bit of any result — serial and
//! threaded runs are interchangeable, so pick threads for speed and serial for debugging.
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(8, &mut rng_from_seed(7));
//! let config = SessionConfig::builder()
//!     .message_bits(16)
//!     .check_bits(4)
//!     .di_check_pairs(220)
//!     .channel(ChannelSpec::noisy_identity_chain(10, DeviceModel::ibm_brisbane_like()))
//!     .build()?;
//!
//! let engine = SessionEngine::new(42);
//! let honest = Scenario::new(config.clone(), identities.clone());
//! let outcome = engine.run(&honest)?;
//! assert!(outcome.is_delivered());
//!
//! // Attacked variants are one adversary away, and batches aggregate trials per scenario.
//! let attacked = honest
//!     .clone()
//!     .with_label("impersonation")
//!     .with_adversary(Adversary::ImpersonateBob);
//! let summaries = engine.run_batch(&[honest.clone(), attacked.clone()], 3)?;
//! assert_eq!(summaries[0].delivered, 3);
//! assert!(summaries[1].detection_rate() > 0.9);
//!
//! // The same batch across all cores: bit-identical summaries, plus executor stats.
//! let threaded = engine.with_parallelism(Parallelism::Auto);
//! let (parallel_summaries, stats) = threaded.run_batch_with_stats(&[honest, attacked], 3)?;
//! assert_eq!(parallel_summaries, summaries);
//! assert_eq!(stats.tasks, 6); // 2 scenarios × 3 trials
//! # Ok(())
//! # }
//! ```
//!
//! ## Sharded sweeps
//!
//! The same determinism contract extends across processes and machines: every run decomposes
//! into explicit **plan → execute → merge** stages (`protocol::engine::shard`). A
//! [`prelude::ShardPlan`] is plain serde data — scenario, master seed, fingerprint, trial
//! range — so a sweep splits into shards that execute anywhere and merge back byte-identically:
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(4, &mut rng_from_seed(7));
//! let config = SessionConfig::builder()
//!     .message_bits(8)
//!     .check_bits(2)
//!     .di_check_pairs(24)
//!     .build()?;
//! let scenario = Scenario::new(config, identities);
//!
//! let engine = SessionEngine::new(42);
//! let whole = engine.run_trials(&scenario, 8)?;
//!
//! // Split the run; execute each shard on an unrelated engine (as another
//! // machine would — the plan alone determines every trial); merge in order.
//! let mut merger = ShardMerger::new();
//! for plan in engine.plan(&scenario, 8).split_into(4) {
//!     merger.push(SessionEngine::new(0).execute_shard(&plan, ShardOutput::Summary)?)?;
//! }
//! assert_eq!(merger.finish()?.into_summary().unwrap(), whole);
//! # Ok(())
//! # }
//! ```
//!
//! The `shardctl` binary (in the `bench` crate) ships the three stages between processes as
//! JSON — `run` workers can live on different machines, and the merge still reproduces the
//! single-process sweep byte for byte:
//!
//! ```text
//! shardctl scenario --preset intercept | shardctl plan --trials 1000 --seed 42 --shards 4 \
//!   | shardctl run | shardctl merge
//! ```
//!
//! ## Resumable queues
//!
//! Static shard assignment assumes identical, immortal workers. For a heterogeneous fleet,
//! a [`prelude::ShardQueue`] (`protocol::engine::queue`) turns the same run into a claimable
//! work queue on a shared directory: workers take fine-grained sub-plans on a *lease* basis
//! (fast workers simply claim more; a dead worker's leases expire and its shards are
//! re-issued), and every completed result is persisted with a content fingerprint in a
//! versioned on-disk `MergeCheckpoint`. Checkpoint writes are atomic, so a sweep SIGKILLed
//! at any instant resumes exactly where it stopped — and because every shard is a pure
//! function of its plan, the resumed merge is **byte-identical** to an uninterrupted run:
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(4, &mut rng_from_seed(7));
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(24).build()?;
//! let scenario = Scenario::new(config, identities);
//! let engine = SessionEngine::new(42);
//!
//! let dir = std::env::temp_dir().join(format!("ua-qsdc-quickstart-{}", std::process::id()));
//! let queue = ShardQueue::init(&dir, &engine.plan(&scenario, 6), 2, ShardOutput::Summary)?;
//! // Each worker loops: claim a lease, execute, submit. (Normally many
//! // processes on many machines; the claim/submit API is identical.)
//! while let ClaimOutcome::Claimed(plan) = queue.claim("worker-1", 60_000)? {
//!     queue.submit(&engine.execute_shard(&plan, ShardOutput::Summary)?)?;
//! }
//! assert_eq!(
//!     queue.merge()?.into_summary().unwrap(),
//!     engine.run_trials(&scenario, 6)?, // == the uninterrupted run, byte for byte
//! );
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! Between processes, the `shardctl queue` subcommands drive the same directory — `init`
//! creates it, any number of `work` processes drain it cooperatively, and `resume` verifies
//! the checkpoint (naming any corrupt result file) and prints the merged run:
//!
//! ```text
//! shardctl queue init --dir sweep/ --scenario scenario.json --trials 100000 --seed 42
//! shardctl queue work --dir sweep/ --worker alpha &   # start/kill workers freely,
//! shardctl queue work --dir sweep/ --worker beta  &   # on any machines sharing sweep/
//! shardctl queue resume --dir sweep/                  # == the unsharded run, byte for byte
//! ```
//!
//! ## Campaigns
//!
//! One level above single sweeps, a [`prelude::Campaign`] (`protocol::engine::campaign`)
//! makes a whole parameter space declarative: one or more [`prelude::Axis`] value lists
//! (η, adversary, backend, attack strength, trial budget — a cartesian grid, or an explicit
//! point list) over a base scenario. Expansion derives every point a fingerprinted scenario
//! and an independent seed, so the set executes in any order, on any fleet, and folds into a
//! [`prelude::CampaignReport`] with per-point summaries and Wilson-scored detection /
//! false-alarm intervals:
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(4, &mut rng_from_seed(7));
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(24).build()?;
//!
//! let campaign = Campaign {
//!     label: "adversary-sweep".into(),
//!     master_seed: 42,
//!     trials: 2,
//!     workload: CampaignWorkload::Session { base: Scenario::new(config, identities) },
//!     space: CampaignSpace::Grid(vec![
//!         Axis::Adversary(vec![Adversary::Honest, Adversary::ImpersonateBob]),
//!         Axis::Backend(BackendKind::ALL.to_vec()),
//!     ]),
//! };
//! // Grid product, last axis fastest: 2 adversaries × every backend.
//! assert_eq!(campaign.expand()?.len(), 2 * BackendKind::ALL.len());
//!
//! let report = campaign.run_direct(Parallelism::Serial, &NoSampler)?;
//! let honest = report.points[0].false_alarm.as_ref().unwrap();
//! let attacked = report.points[BackendKind::ALL.len()].detection.as_ref().unwrap();
//! assert!(attacked.rate > honest.rate);
//! assert!(attacked.lower <= attacked.rate && attacked.rate <= attacked.upper);
//! # Ok(())
//! # }
//! ```
//!
//! A [`prelude::CampaignRun`] lowers the same campaign onto per-point `ShardQueue`s in a
//! shared directory, so a fleet drains it resumably — kill any worker, `resume`, and the
//! report is byte-identical. The `shardctl campaign plan/run/resume/status/report`
//! subcommands drive that directory between processes, and the `fig2`, `fig3`,
//! `ablation_backend`, `table1` and `attack_*` binaries are formatters over checked-in
//! campaign definitions (`crates/bench/campaigns/*.json`):
//!
//! ```text
//! shardctl campaign run --dir campaign/ --stored demo     # or --campaign mysweep.json
//! kill -9 %1 && shardctl campaign resume --dir campaign/  # == uninterrupted, byte for byte
//! ```
//!
//! ## The session service
//!
//! For many tenants sharing one long-lived process, `qsdc-serve` (the `serve` crate) serves
//! the same jobs over the wire: clients submit serde `Scenario`/`Campaign` jobs as
//! newline-delimited JSON (`protocol::wire`, golden-fixture-locked), and the server
//! multiplexes them onto a shared worker pool with fair round-robin scheduling across
//! clients, per-client quotas answered with explicit `Busy` backpressure (work is never
//! silently dropped), streaming incremental `TrialSummary` snapshots, and cancellation.
//! Every accepted job is lowered onto a spooled [`prelude::ShardQueue`] *before* it is
//! acknowledged, so a SIGKILLed server restarted on the same spool finishes every job —
//! byte-identical to an uninterrupted run, and to the same job run locally
//! (see `docs/service.md`):
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//! use protocol::wire::{JobSpec, Response};
//! use serve::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(2, &mut rng_from_seed(7));
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(16).build()?;
//! let scenario = Scenario::new(config, identities);
//!
//! let dir = std::env::temp_dir().join(format!("ua-qsdc-serve-quickstart-{}", std::process::id()));
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port; real deployments pass --addr
//!     spool_dir: dir.clone(),
//!     ..ServerConfig::default()
//! })?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let Response::Accepted { job } =
//!     client.submit(JobSpec::Session { scenario: scenario.clone(), trials: 4, seed: 42 })?
//! else { panic!("under quota, so the job is accepted") };
//! let (done, _snapshots) = client.wait_done(job)?;
//! let Response::Done { summary: Some(summary), .. } = done else { panic!("session jobs end in Done") };
//! assert_eq!(summary, SessionEngine::new(42).run_trials(&scenario, 4)?); // == the local run
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! The `serve_load` binary (`bench` crate) is the matching load generator — hundreds of
//! concurrent clients, mixed job sizes, p50/p99 latency and aggregate trials/sec reported
//! into `BENCH_throughput.json`'s `serve` section.
//!
//! ## Simulation backends
//!
//! Every scenario declares its simulation substrate via [`prelude::BackendKind`] (see
//! `docs/backends.md` for the full comparison): the default `density-matrix` backend
//! reproduces the paper's exact emulation, `statevector` runs the same sessions as sampled
//! pure-state trajectories (one Born-sampled Kraus branch per noise application — cheaper,
//! and approximate rather than exact), and `pauli-twirled` lowers every noise placement to
//! its Pauli twirl at compile time and tracks each EPR pair as a two-bit Pauli frame —
//! integer-only trial loops, two to three orders of magnitude faster on noisy-channel
//! sweeps. The kind is part of the scenario fingerprint, so the substrates draw disjoint RNG
//! streams, a shipped `ShardPlan` reproduces on the right substrate anywhere, and the merger
//! refuses to fold results from different backends into one run. Select it with
//! [`with_backend`](prelude::Scenario::with_backend) in code, or `--backend` on `shardctl`
//! and the attack sweep binaries; the `ablation_backend` binary sweeps detection-rate curves
//! on every substrate and reports where (and at what speedup) they diverge from the exact
//! emulation:
//!
//! ```rust
//! use ua_di_qsdc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let identities = IdentityPair::generate(4, &mut rng_from_seed(7));
//! let config = SessionConfig::builder().message_bits(8).check_bits(2).di_check_pairs(64).build()?;
//! let sampled = Scenario::new(config.clone(), identities.clone())
//!     .with_backend(BackendKind::Statevector);
//! assert!(SessionEngine::new(42).run(&sampled)?.is_delivered());
//! let twirled = Scenario::new(config, identities).with_backend(BackendKind::PauliTwirled);
//! assert!(SessionEngine::new(42).run(&twirled)?.is_delivered());
//! # Ok(())
//! # }
//! ```
//!
//! ## Determinism
//!
//! The reproducibility invariants the workspace lives by — and the `detlint` tool that
//! statically enforces them — are documented in `docs/determinism.md`.

#![forbid(unsafe_code)]

pub use analysis;
pub use attacks;
pub use mathkit;
pub use noise;
pub use protocol;
pub use qchannel;
pub use qsim;

/// Convenience re-exports covering the most common entry points of the reproduction.
pub mod prelude {
    pub use analysis::prelude::*;
    pub use attacks::prelude::*;
    pub use noise::prelude::*;
    pub use protocol::prelude::*;
    pub use qchannel::prelude::*;
    pub use qsim::prelude::*;

    pub use mathkit::complex::Complex64;

    /// Build a deterministic RNG from a seed; the reproduction uses this everywhere so that
    /// examples, tests and benches are repeatable.
    pub fn rng_from_seed(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
