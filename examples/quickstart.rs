//! Quickstart: run one honest UA-DI-QSDC session end to end through the
//! [`SessionEngine`] and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ua_di_qsdc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Alice and Bob share secret identities (l = 8 qubits → 16 bits each) ahead of time.
    let identities = IdentityPair::generate(8, &mut rng_from_seed(2024));

    let message = SecretMessage::from_text("Hi Bob!");
    println!(
        "Alice wants to send      : {:?} ({} bits)",
        message.to_text_lossy(),
        message.len()
    );

    // The channel between them is modelled exactly like the paper's emulation: η = 10 noisy
    // identity gates on an ibm_brisbane-like device (0.6 µs of flight time).
    let config = SessionConfig::builder()
        .message_bits(message.len())
        .check_bits(8)
        .di_check_pairs(300)
        .channel(ChannelSpec::noisy_identity_chain(
            10,
            DeviceModel::ibm_brisbane_like(),
        ))
        .build()?;

    // A scenario is pure data: what to run. The engine owns how: the simulation
    // backend and the deterministic per-trial RNG streams.
    let scenario = Scenario::new(config, identities)
        .with_label("quickstart")
        .with_message(message);
    let engine = SessionEngine::new(2024);
    println!(
        "engine                   : master seed {}, backend {} ({})",
        engine.master_seed(),
        engine.backend_name(),
        scenario.backend
    );

    let outcome = engine.run(&scenario)?;

    println!("session status           : {}", outcome.status);
    if let Some(report) = &outcome.di_check_round1 {
        println!("DI check round 1         : {report}");
    }
    if let Some(report) = &outcome.bob_auth {
        println!("Alice verified Bob       : {report}");
    }
    if let Some(report) = &outcome.alice_auth {
        println!("Bob verified Alice       : {report}");
    }
    if let Some(report) = &outcome.di_check_round2 {
        println!("DI check round 2         : {report}");
    }
    if let Some(received) = &outcome.received_message {
        println!("Bob decoded              : {:?}", received.to_text_lossy());
        println!(
            "message accuracy         : {:.4}",
            outcome.message_accuracy().unwrap_or(0.0)
        );
    }
    println!(
        "resources                : {} EPR pairs total ({} message, {} identity, {} DI-check)",
        outcome.resources.total_pairs,
        outcome.resources.message_pairs,
        outcome.resources.identity_pairs,
        outcome.resources.check_pairs
    );
    println!(
        "classical channel        : {} messages, no secret-correlated content (see attack_leakage)",
        outcome.resources.classical_messages
    );
    println!(
        "\nreplay                   : the same master seed reproduces this outcome bit for bit."
    );
    Ok(())
}
