//! Eavesdropper drill: throw every attack from the paper's Section III at the protocol as one
//! engine batch and watch each one get caught.
//!
//! ```text
//! cargo run --example eavesdropper_drill
//! ```

use ua_di_qsdc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let identities = IdentityPair::generate(6, &mut rng_from_seed(7));
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()?;
    let trials = 8;

    // One scenario per attack of Section III — a single declarative batch.
    let scenario = |label: &str, adversary: Adversary| {
        Scenario::new(config.clone(), identities.clone())
            .with_label(label)
            .with_adversary(adversary)
    };
    let scenarios = vec![
        scenario("III-A Eve-as-Alice", Adversary::ImpersonateAlice),
        scenario("III-A Eve-as-Bob", Adversary::ImpersonateBob),
        scenario(
            "III-B intercept-resend",
            Adversary::InterceptResend(qchannel::taps::InterceptBasis::Computational),
        ),
        scenario(
            "III-C man-in-the-middle",
            Adversary::ManInTheMiddle(qchannel::taps::SubstituteState::RandomComputational),
        ),
        scenario(
            "III-D entangle-measure",
            Adversary::EntangleMeasure { strength: 1.0 },
        ),
    ];

    let engine = SessionEngine::new(7);
    println!(
        "== attack drill ({} trials each, one engine batch) ==",
        trials
    );
    let summaries = engine.run_batch(&scenarios, trials)?;
    for summary in &summaries {
        println!("  {summary}");
        assert_eq!(summary.delivered, 0, "no attack may ever deliver");
    }

    println!("\n== information leakage (Section III-E) ==");
    let honest = Scenario::new(config, identities.clone()).with_label("honest");
    let transcripts: Vec<_> = engine
        .run_outcomes(&honest, 10)?
        .into_iter()
        .map(|outcome| outcome.transcript)
        .collect();
    let audit = LeakageAudit::with_identity(&transcripts, &identities.bob);
    println!("  {audit}");

    println!("\nEvery attack was detected; the honest transcript leaks nothing.");
    Ok(())
}
