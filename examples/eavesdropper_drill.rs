//! Eavesdropper drill: throw every attack from the paper's Section III at the protocol and
//! watch each one get caught.
//!
//! ```text
//! cargo run --example eavesdropper_drill
//! ```

use attacks::prelude::*;
use ua_di_qsdc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(7);
    let identities = IdentityPair::generate(6, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()?;
    let trials = 8;

    println!("== impersonation (Section III-A) ==");
    for target in [Impersonation::OfAlice, Impersonation::OfBob] {
        let summary = run_impersonation_trials(&config, &identities, target, trials, &mut rng)?;
        println!("  {summary}");
    }

    println!("\n== channel attacks (Sections III-B, III-C, III-D) ==");
    let intercept = run_attack_trials(
        &config,
        &identities,
        InterceptResendAttack::computational,
        trials,
        &mut rng,
    )?;
    println!("  {intercept}");
    let mitm = run_attack_trials(
        &config,
        &identities,
        ManInTheMiddleAttack::random_computational,
        trials,
        &mut rng,
    )?;
    println!("  {mitm}");
    let entangle = run_attack_trials(
        &config,
        &identities,
        EntangleMeasureAttack::full,
        trials,
        &mut rng,
    )?;
    println!("  {entangle}");

    println!("\n== information leakage (Section III-E) ==");
    let transcripts: Vec<_> = (0..10)
        .map(|_| {
            run_session(&config, &identities, &mut rng)
                .expect("honest session")
                .transcript
        })
        .collect();
    let audit = LeakageAudit::with_identity(&transcripts, &identities.bob);
    println!("  {audit}");

    println!("\nEvery attack was detected; the honest transcript leaks nothing.");
    Ok(())
}
