//! Channel survey: reproduce the spirit of the paper's Fig. 3 interactively — how does the
//! message accuracy degrade as the quantum channel gets longer?
//!
//! ```text
//! cargo run --release --example channel_survey
//! ```

use ua_di_qsdc::noise::DeviceModel;

fn main() {
    let device = DeviceModel::ibm_brisbane_like();
    println!("device: {device}");
    println!("\n  η (id gates)   duration (µs)   accuracy");
    let etas = [10usize, 50, 100, 200, 300, 400, 500, 600, 700];
    let points = bench_points(&device, &etas);
    for p in &points {
        let bar_len = (p.accuracy * 40.0).round() as usize;
        println!(
            "  {:>12}   {:>13.2}   {:>7.3}  {}",
            p.eta,
            p.duration_us,
            p.accuracy,
            "#".repeat(bar_len)
        );
    }
    if let Some(cross) = points.iter().find(|p| p.accuracy < 0.6) {
        println!(
            "\naccuracy first drops below 60% around η = {} ({} µs) — the paper reports the same threshold near η ≈ 700.",
            cross.eta, cross.duration_us
        );
    } else {
        println!("\naccuracy stayed above 60% across the sweep (paper: drops below 60% past η ≈ 700).");
    }
}

fn bench_points(
    device: &DeviceModel,
    etas: &[usize],
) -> Vec<ua_di_qsdc::analysis::rows::AccuracyPoint> {
    // The bench crate is not a dependency of the facade, so rebuild the tiny sweep here using
    // the public simulator API directly.
    use rand::SeedableRng;
    use ua_di_qsdc::analysis::rows::AccuracyPoint;
    use ua_di_qsdc::noise::NoisyExecutor;
    use ua_di_qsdc::qsim::circuit::CircuitBuilder;
    use ua_di_qsdc::qsim::pauli::Pauli;

    let executor = NoisyExecutor::new(device.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let shots = 256;
    etas.iter()
        .map(|&eta| {
            let mut correct = 0u64;
            let mut total = 0u64;
            for pauli in Pauli::ALL {
                let circuit = CircuitBuilder::new(2, 2)
                    .h(0)
                    .cnot(0, 1)
                    .unitary(pauli.symbol(), pauli.matrix(), &[0])
                    .identity_chain(0, eta)
                    .cnot(0, 1)
                    .h(0)
                    .measure(0, 0)
                    .measure(1, 1)
                    .build();
                let counts = executor.sample(&circuit, shots, &mut rng).expect("circuit runs");
                // Raw readout m_a m_b identifies the Bell state: 00→I, 10→Z, 01→X, 11→iY.
                let expected = match pauli {
                    Pauli::I => "00",
                    Pauli::Z => "10",
                    Pauli::X => "01",
                    Pauli::IY => "11",
                };
                correct += counts.get(expected);
                total += counts.total();
            }
            AccuracyPoint {
                eta,
                duration_us: eta as f64 * device.identity_gate_time_ns() / 1000.0,
                accuracy: correct as f64 / total as f64,
                shots: total,
            }
        })
        .collect()
}
