//! Channel survey: reproduce the spirit of the paper's Fig. 3 with full protocol sessions —
//! how do delivery and message accuracy degrade as the quantum channel gets longer?
//!
//! Each channel length becomes one [`Scenario`] in a single engine batch, so the whole sweep
//! replays bit-for-bit from one master seed.
//!
//! ```text
//! cargo run --release --example channel_survey
//! ```

use ua_di_qsdc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceModel::ibm_brisbane_like();
    println!("device: {device}");

    let identities = IdentityPair::generate(4, &mut rng_from_seed(31337));
    let etas = [10usize, 50, 100, 200, 300, 400, 500, 600, 700];
    let trials = 4;

    // Loose tolerances: we want to *observe* the raw accuracy at every length
    // rather than abort, so integrity/auth checks are disabled and the CHSH
    // threshold is left at 0 (an honest channel never yields S ≤ 0).
    let scenarios: Vec<Scenario> = etas
        .iter()
        .map(|&eta| {
            let config = SessionConfig::builder()
                .message_bits(32)
                .check_bits(8)
                .di_check_pairs(64)
                .chsh_abort_threshold(0.0)
                .auth_error_tolerance(1.0)
                .check_bit_error_tolerance(1.0)
                .channel(ChannelSpec::noisy_identity_chain(eta, device.clone()))
                .build()
                .expect("survey config is valid");
            Scenario::new(config, identities.clone()).with_label(format!("eta-{eta}"))
        })
        .collect();

    let engine = SessionEngine::new(31337);
    let summaries = engine.run_batch(&scenarios, trials)?;

    println!("\n  η (id gates)   duration (µs)   delivered   accuracy");
    let mut crossing = None;
    for (&eta, summary) in etas.iter().zip(&summaries) {
        let duration_us = eta as f64 * device.identity_gate_time_ns() / 1000.0;
        let accuracy = summary.mean_message_accuracy.unwrap_or(0.0);
        if crossing.is_none() && accuracy < 0.6 {
            crossing = Some((eta, duration_us));
        }
        let bar_len = (accuracy * 40.0).round() as usize;
        println!(
            "  {:>12}   {:>13.2}   {:>4}/{:<4}   {:>7.3}  {}",
            eta,
            duration_us,
            summary.delivered,
            summary.trials,
            accuracy,
            "#".repeat(bar_len)
        );
    }
    match crossing {
        Some((eta, duration_us)) => println!(
            "\naccuracy first drops below 60% around η = {eta} ({duration_us} µs) — the paper \
             reports the same threshold near η ≈ 700."
        ),
        None => println!(
            "\naccuracy stayed above 60% across the sweep (paper: drops below 60% past η ≈ 700)."
        ),
    }
    Ok(())
}
