//! Authenticated vs baseline: show concretely what the paper's contribution buys.
//!
//! The baseline DI-QSDC (Zhou et al. 2020 shape, no user authentication) happily hands the
//! message to anyone holding the receiving end; the proposed UA-DI-QSDC aborts unless the
//! receiver can prove knowledge of `id_B`.
//!
//! ```text
//! cargo run --example authenticated_vs_baseline
//! ```

use ua_di_qsdc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(99);
    let identities = IdentityPair::generate(8, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(16)
        .check_bits(4)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()?;
    let message = SecretMessage::from_bitstring("1011001110001111")?;

    println!("scenario: Eve has taken over Bob's end of the link and does not know id_B.\n");

    // Baseline: no authentication phase at all.
    let mut no_eavesdropper = qchannel::quantum::NoTap;
    let baseline = run_baseline_di_qsdc(&config, &message, &mut no_eavesdropper, &mut rng)?;
    println!("baseline DI-QSDC (no UA) : {baseline}");
    if let Some(received) = &baseline.received_message {
        println!(
            "  -> Eve now holds the secret message: {} (accuracy {:.2})",
            received,
            baseline.message_accuracy().unwrap_or(0.0)
        );
    }

    // Proposed protocol: Eve must encode id_B on the D_B block, but she can only guess.
    let scenario = Scenario::new(config, identities.clone())
        .with_label("eve-as-bob")
        .with_message(message)
        .with_adversary(Adversary::ImpersonateBob);
    let outcome = SessionEngine::new(99).run(&scenario)?;
    println!("\nproposed UA-DI-QSDC      : {}", outcome.status);
    if let Some(report) = &outcome.bob_auth {
        println!("  -> Alice's verdict on \"Bob\": {report}");
    }
    println!(
        "  -> message delivered: {} (detection probability for l = {}: {:.6})",
        outcome.is_delivered(),
        identities.qubit_len(),
        protocol::auth::impersonation_detection_probability(identities.qubit_len())
    );
    Ok(())
}
